//! The binary log-record format: length-prefixed, checksummed, replayable.
//!
//! One record carries the published write-set of one committed transaction:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────────────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ payload (len bytes)                      │
//! └────────────┴────────────┴──────────────────────────────────────────┘
//! payload = seq: u64 LE
//!         | count: u32 LE
//!         | count × op
//! op      = 0x00 (Put) | id: i64 LE | value: i64 LE
//!         | 0x01 (Del) | id: i64 LE
//! ```
//!
//! `crc` is the CRC-32 of the payload. The length prefix frames the record;
//! the checksum distinguishes a *torn* tail (the process died mid-write, the
//! bytes simply stop) from a *corrupt* one (the bytes are there but wrong) —
//! recovery treats both as the end of the committed prefix and truncates.

use stm_core::CommitOp;

use crate::crc::crc32;

/// Upper bound on a record payload — a framing sanity check so a corrupted
/// length prefix cannot make recovery try to allocate gigabytes.
pub const MAX_PAYLOAD_BYTES: u32 = 64 << 20;

const TAG_PUT: u8 = 0x00;
const TAG_DEL: u8 = 0x01;

/// One decoded log record: the commit sequence number and the write-set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The hook-assigned commit sequence number.
    pub seq: u64,
    /// The published write-set, in publish order.
    pub ops: Vec<CommitOp>,
}

/// Outcome of decoding one record from the head of a byte slice.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded {
    /// A valid record followed by the number of bytes it occupied.
    Ok(Record, usize),
    /// The buffer ends mid-record (a torn tail write).
    Torn,
    /// The bytes are malformed: checksum mismatch, impossible length, or an
    /// unknown op tag.
    Corrupt,
}

/// Appends the encoded record for `(seq, ops)` to `out` and returns the
/// number of bytes appended.
pub fn encode_into(out: &mut Vec<u8>, seq: u64, ops: &[CommitOp]) -> usize {
    let start = out.len();
    // Reserve the header, then come back and patch it.
    out.extend_from_slice(&[0u8; 8]);
    let payload_start = out.len();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match *op {
            CommitOp::Put { id, value } => {
                out.push(TAG_PUT);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            CommitOp::Del { id } => {
                out.push(TAG_DEL);
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
    }
    let payload_len = (out.len() - payload_start) as u32;
    let crc = crc32(&out[payload_start..]);
    out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// Encodes one record as a standalone byte vector.
pub fn encode(seq: u64, ops: &[CommitOp]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(&mut out, seq, ops);
    out
}

fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("checked length"))
}

fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("checked length"))
}

fn read_i64(bytes: &[u8]) -> i64 {
    i64::from_le_bytes(bytes[..8].try_into().expect("checked length"))
}

/// Decodes the record at the head of `bytes`.
pub fn decode(bytes: &[u8]) -> Decoded {
    if bytes.len() < 8 {
        return Decoded::Torn;
    }
    let payload_len = read_u32(bytes) as usize;
    if payload_len > MAX_PAYLOAD_BYTES as usize || payload_len < 12 {
        // Even an empty write-set needs seq (8) + count (4) bytes, so a
        // shorter claim is not a torn write — it is garbage.
        return Decoded::Corrupt;
    }
    let expected_crc = read_u32(&bytes[4..]);
    let Some(payload) = bytes.get(8..8 + payload_len) else {
        return Decoded::Torn;
    };
    if crc32(payload) != expected_crc {
        return Decoded::Corrupt;
    }
    let seq = read_u64(payload);
    let count = read_u32(&payload[8..]) as usize;
    let mut ops = Vec::with_capacity(count.min(1024));
    let mut at = 12usize;
    for _ in 0..count {
        let Some(&tag) = payload.get(at) else {
            return Decoded::Corrupt;
        };
        at += 1;
        match tag {
            TAG_PUT => {
                if payload.len() < at + 16 {
                    return Decoded::Corrupt;
                }
                ops.push(CommitOp::Put {
                    id: read_i64(&payload[at..]),
                    value: read_i64(&payload[at + 8..]),
                });
                at += 16;
            }
            TAG_DEL => {
                if payload.len() < at + 8 {
                    return Decoded::Corrupt;
                }
                ops.push(CommitOp::Del {
                    id: read_i64(&payload[at..]),
                });
                at += 8;
            }
            _ => return Decoded::Corrupt,
        }
    }
    if at != payload.len() {
        return Decoded::Corrupt;
    }
    Decoded::Ok(Record { seq, ops }, 8 + payload_len)
}

/// Decodes every record in `bytes`, returning the committed prefix and the
/// byte offset where it ends (the truncation point when the tail is torn or
/// corrupt). The second element is `true` when decoding consumed the whole
/// buffer cleanly.
pub fn decode_all(bytes: &[u8]) -> (Vec<Record>, usize, bool) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        match decode(&bytes[at..]) {
            Decoded::Ok(record, used) => {
                records.push(record);
                at += used;
            }
            Decoded::Torn | Decoded::Corrupt => return (records, at, false),
        }
    }
    (records, at, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<CommitOp> {
        vec![
            CommitOp::Put { id: 3, value: 42 },
            CommitOp::Del { id: -9 },
            CommitOp::Put {
                id: i64::MAX,
                value: i64::MIN,
            },
        ]
    }

    #[test]
    fn round_trip_including_empty_write_set() {
        for ops in [sample_ops(), Vec::new()] {
            let bytes = encode(77, &ops);
            match decode(&bytes) {
                Decoded::Ok(record, used) => {
                    assert_eq!(used, bytes.len());
                    assert_eq!(record.seq, 77);
                    assert_eq!(record.ops, ops);
                }
                other => panic!("expected Ok, got {other:?}"),
            }
        }
    }

    #[test]
    fn concatenated_records_decode_in_order() {
        let mut bytes = Vec::new();
        for seq in 1..=5u64 {
            encode_into(&mut bytes, seq, &[CommitOp::Put { id: seq as i64, value: 1 }]);
        }
        let (records, end, clean) = decode_all(&bytes);
        assert!(clean);
        assert_eq!(end, bytes.len());
        assert_eq!(records.len(), 5);
        assert_eq!(records.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn every_truncation_point_is_torn_not_corrupt_or_ok() {
        let bytes = encode(9, &sample_ops());
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Decoded::Torn => {}
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_corruption_is_detected() {
        let bytes = encode(11, &sample_ops());
        for i in 8..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert_eq!(decode(&bad), Decoded::Corrupt, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn absurd_length_prefix_is_corrupt_not_an_allocation() {
        let mut bytes = encode(1, &sample_ops());
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&bytes), Decoded::Corrupt);
        bytes[0..4].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(decode(&bytes), Decoded::Corrupt, "shorter-than-header claim");
    }

    #[test]
    fn decode_all_returns_the_committed_prefix_on_a_torn_tail() {
        let mut bytes = Vec::new();
        for seq in 1..=4u64 {
            encode_into(&mut bytes, seq, &[CommitOp::Del { id: seq as i64 }]);
        }
        let keep = bytes.len();
        encode_into(&mut bytes, 5, &sample_ops());
        let torn = &bytes[..bytes.len() - 3];
        let (records, end, clean) = decode_all(torn);
        assert!(!clean);
        assert_eq!(end, keep, "truncation point is the end of record 4");
        assert_eq!(records.len(), 4);
    }
}
