//! Bounded loomlite models of the WAL's slot ring.
//!
//! Compiled only under `--features model-check`, where
//! [`stm_core::sync`] resolves to loomlite modeled primitives — the models
//! drive the *shipped* [`SlotRing`](crate::ring), not a copy.
//!
//! All three models run with [`fail_on_timeout_rescue`]: every condvar wait
//! in the ring is timed (the real code uses ticks as a belt-and-braces
//! backstop), and a "timeout" under the checker means every thread was
//! asleep with no wakeup coming — exactly a lost-wakeup bug. Forbidding the
//! rescue proves the parked/ready and space handshakes never *need* the
//! backstop: consumption cannot stall.
//!
//! Every function returns the checker's [`Report`] so callers (unit tests
//! here and the workspace-level `tests/model_check.rs`) can assert
//! exhaustiveness and schedule counts.
//!
//! [`fail_on_timeout_rescue`]: loomlite::Builder::fail_on_timeout_rescue

use std::time::Duration;

use loomlite::{Builder, Report};

use crate::ring::SlotRing;
use stm_core::sync::Arc;

/// Default builder: bounded-exhaustive (preemption bound 2) plus the seeded
/// random phase, with timeout rescues treated as lost-wakeup failures.
fn builder() -> Builder {
    Builder {
        fail_on_timeout_rescue: true,
        ..Builder::default()
    }
}

/// A tick long enough that a model relying on it (rather than on a real
/// notification) would have to be rescued — which `builder()` forbids.
const TICK: Duration = Duration::from_secs(1);

/// Consume `seq`, parking between attempts exactly like the writer loop.
fn consume_parking(ring: &SlotRing, seq: u64) -> (Vec<u8>, bool) {
    loop {
        if let Some(out) = ring.consume(seq) {
            return out;
        }
        ring.park_until_ready(seq, TICK, || false);
    }
}

/// Minimal Dekker model: one producer fills one slot while the consumer
/// parks for it. The producer's publish-then-check-`parked` races the
/// consumer's set-`parked`-then-re-check; a lost wakeup would strand the
/// consumer in its (long) timed wait and surface as a forbidden timeout
/// rescue. Referenced by the `// ordering:` comment in
/// [`SlotRing::fill`](crate::ring).
pub fn ring_parked_consumer_never_misses_a_fill() -> Report {
    builder().check(|| {
        let ring = Arc::new(SlotRing::new(2, 1));
        let producer = {
            let ring = Arc::clone(&ring);
            loomlite::thread::spawn(move || {
                let seq = ring.reserve();
                assert_eq!(seq, 1);
                ring.fill(seq, vec![7], true);
            })
        };
        // Consumer (this thread): park until the fill lands, then take it.
        assert_eq!(consume_parking(&ring, 1), (vec![7], true));
        producer.join().unwrap();
        assert_eq!(ring.consumed(), 1);
    })
}

/// Two producers race their reserve+fill against a parking consumer.
/// Asserts on every interleaving that consumption is strictly in sequence
/// order at the expected generation (the payload carries its sequence
/// number), that the abandoned ticket flows through without stalling the
/// committed one behind it, and — via the forbidden rescue — that the
/// consumer never sleeps through a fill.
pub fn ring_consumes_in_order_without_stalling() -> Report {
    builder().check(|| {
        let ring = Arc::new(SlotRing::new(2, 1));
        let committer = {
            let ring = Arc::clone(&ring);
            loomlite::thread::spawn(move || {
                let seq = ring.reserve();
                ring.fill(seq, vec![seq as u8], true);
                seq
            })
        };
        let abandoner = {
            let ring = Arc::clone(&ring);
            loomlite::thread::spawn(move || {
                let seq = ring.reserve();
                // A reservation whose commit CAS lost: empty abandoned ticket.
                ring.fill(seq, Vec::new(), false);
                seq
            })
        };

        // Consumer (this thread): strictly in-order, parking when pending.
        let mut committed_payloads = 0;
        for seq in 1..=2u64 {
            let (bytes, committed) = consume_parking(&ring, seq);
            if committed {
                committed_payloads += 1;
                assert_eq!(bytes, vec![seq as u8], "payload from a different generation");
            } else {
                assert!(bytes.is_empty(), "abandoned ticket carried bytes");
            }
        }

        let committed_seq = committer.join().unwrap();
        let abandoned_seq = abandoner.join().unwrap();
        assert_ne!(committed_seq, abandoned_seq, "reservation handed out twice");
        assert_eq!(committed_payloads, 1, "committed record lost or duplicated");
        assert_eq!(ring.consumed(), 2);
        assert_eq!(ring.occupancy(3), 0);
    })
}

/// Backpressure model on a capacity-1 ring: the second reservation is a
/// whole ring ahead of the consumer and must block in
/// [`SlotRing::wait_for_slot`](crate::ring) until the first slot is
/// consumed. The producer's raise-waiters-then-re-check races the
/// consumer's store-`consumed`-then-check-waiters; a miss on both sides
/// would leave the producer asleep — again a forbidden timeout rescue.
pub fn ring_backpressure_admits_after_drain() -> Report {
    builder().check(|| {
        let ring = Arc::new(SlotRing::new(1, 1));
        let first = ring.reserve();
        ring.fill(first, vec![1], true);

        let producer = {
            let ring = Arc::clone(&ring);
            loomlite::thread::spawn(move || {
                let seq = ring.reserve();
                assert_eq!(seq, 2);
                assert!(ring.wait_for_slot(seq, || false), "never aborted");
                ring.fill(seq, vec![2], true);
            })
        };

        // Consumer (this thread): draining seq 1 is what admits seq 2.
        assert_eq!(consume_parking(&ring, 1), (vec![1], true));
        ring.notify_space();
        assert_eq!(consume_parking(&ring, 2), (vec![2], true));
        producer.join().unwrap();
        assert_eq!(ring.consumed(), 2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parked_consumer_never_misses_a_fill() {
        let report = ring_parked_consumer_never_misses_a_fill();
        eprintln!("ring parked/fill: {report}");
        assert!(report.schedules() > 100, "{report}");
        assert_eq!(report.timeout_rescues, 0);
    }

    #[test]
    fn consumption_is_in_order_and_never_stalls() {
        let report = ring_consumes_in_order_without_stalling();
        eprintln!("ring in-order: {report}");
        assert!(report.schedules() > 100, "{report}");
        assert_eq!(report.timeout_rescues, 0);
    }

    #[test]
    fn backpressure_wakes_the_blocked_reservation() {
        let report = ring_backpressure_admits_after_drain();
        eprintln!("ring backpressure: {report}");
        assert!(report.schedules() > 100, "{report}");
        assert_eq!(report.timeout_rescues, 0);
    }
}
