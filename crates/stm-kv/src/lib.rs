//! # stm-kv
//!
//! A networked transactional key-value service built on the `stm-core`
//! runtime — the serving surface that turns the contention-manager study
//! into something real clients can contend over.
//!
//! The paper's experiments (and the in-process `stm-bench` harness) drive
//! transactions from threads inside one address space; `stm-kv` puts the
//! same runtime behind a TCP wire so the interesting latency/throughput
//! behaviour of a contention manager shows up under real client load:
//!
//! * **Storage** ([`KvStore`]) — a dynamic `i64 → i64` keyspace. The
//!   membership index is a [`stm_structures::ShardedTxSet`] over red-black
//!   trees, and every key's value lives in its own [`stm_core::TVar`]
//!   (materialised on first touch, so any key is addressable), so
//!   transactions that touch different keys share no state beyond the index
//!   path they traverse.
//! * **Protocol** ([`proto`]) — a line-based, pipelinable text protocol:
//!   `GET`, `PUT`, `DEL`, `ADD` (atomic read-modify-write), `RANGE`, `SUM`,
//!   plus `BEGIN`/`EXEC` multi-key atomic batches,
//!   `PING`/`STATS`/`SNAPSHOT`/`WALSTATS`/`QUIT`.
//! * **Server** ([`KvServer`]) — `std::net::TcpListener` + a worker-thread
//!   pool, no dependencies beyond the workspace. Every request executes as
//!   one STM transaction under the [`stm_cm::ManagerKind`] chosen at server
//!   start, so multi-key batches are serializable across clients by
//!   construction. With [`ServerConfig::wal_dir`] set the server is
//!   **durable**: every mutating request's write-set is appended to an
//!   `stm-log` write-ahead log in serialization order (fsync policy
//!   `every` / `n=` / `ms=`), point-in-time snapshots bound recovery, and a
//!   restart replays snapshot + log tail before accepting connections.
//! * **Client** ([`KvClient`]) — a small blocking client used by the
//!   integration tests, the `stm_kv_demo` example, and the `stm-bench`
//!   closed-loop network load generator.
//!
//! ```
//! use stm_cm::ManagerKind;
//! use stm_kv::{KvClient, KvServer, ServerConfig};
//!
//! let server = KvServer::start(ServerConfig {
//!     manager: ManagerKind::Greedy,
//!     capacity: 128,
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//!
//! let mut client = KvClient::connect(server.addr()).unwrap();
//! client.put(1, 100).unwrap();
//! client.put(2, 100).unwrap();
//! // Atomically move 25 from key 1 to key 2.
//! client
//!     .transfer(1, 2, 25)
//!     .unwrap();
//! assert_eq!(client.get(1).unwrap(), Some(75));
//! assert_eq!(client.sum(0, 127).unwrap(), (200, 2));
//! client.quit().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod proto;
pub mod server;
pub mod store;

pub use client::{BatchOp, KvClient, ServerStatsSnapshot, WalStatsSnapshot};
pub use proto::{parse_reply, parse_request, render_reply, Reply, Request};
pub use server::{KvServer, ServerConfig};
pub use store::KvStore;
