//! # stm-kv
//!
//! A networked transactional key-value service built on the `stm-core`
//! runtime — the serving surface that turns the contention-manager study
//! into something real clients can contend over.
//!
//! The paper's experiments (and the in-process `stm-bench` harness) drive
//! transactions from threads inside one address space; `stm-kv` puts the
//! same runtime behind a TCP wire so the interesting latency/throughput
//! behaviour of a contention manager shows up under real client load:
//!
//! * **Values** ([`Value`], a re-export of [`stm_core::CommitValue`]) —
//!   typed: `Int(i64)`, `Str(String)`, `Bytes(Vec<u8>)`. One enum flows
//!   from the wire through the store into the write-ahead log.
//! * **Storage** ([`KvStore`]) — a dynamic `i64 → Value` keyspace. The
//!   membership index is a [`stm_structures::ShardedTxSet`] over red-black
//!   trees, and every key's value lives in its own
//!   [`stm_core::TVar`]`<Option<Value>>` (materialised on first touch, so
//!   any key is addressable); arithmetic ops (`ADD`/`SUM`) report a typed
//!   [`TypeMismatch`] on non-integer values.
//! * **Protocol** ([`proto`]) — two negotiated framings over one model:
//!   the original line-based v1 text protocol (`nc`-friendly, int-only)
//!   and, after a `HELLO 2` handshake, the binary-safe length-prefixed v2
//!   framing (RESP-style frames) that carries typed values byte-exactly and
//!   machine-readable [`ErrorCode`]s. Verbs: `GET`, `PUT`, `DEL`, `ADD`
//!   (atomic read-modify-write), `RANGE`, `SUM`, plus `BEGIN`/`EXEC`
//!   multi-key atomic batches, `PING`/`STATS`/`SNAPSHOT`/`WALSTATS`/`QUIT`,
//!   and the observability pair `METRICS` (full Prometheus-style text
//!   exposition — latency histograms, abort causes, manager decisions) /
//!   `SLOWLOG n` (the n slowest requests with their abort causes and
//!   contention-manager verdicts).
//! * **Server** ([`KvServer`]) — `std::net::TcpListener` + a worker-thread
//!   pool, no dependencies beyond the workspace. Every request executes as
//!   one STM transaction under the [`stm_cm::ManagerKind`] chosen at server
//!   start, so multi-key batches are serializable across clients by
//!   construction. v1 and v2 clients share one keyspace concurrently. With
//!   [`ServerConfig::wal_dir`] set the server is **durable**: every
//!   mutating request's write-set is appended to an `stm-log` write-ahead
//!   log in serialization order (fsync policy `every` / `n=` / `ms=`),
//!   point-in-time snapshots bound recovery, and a restart replays
//!   snapshot + log tail — v1-era logs replay losslessly — before
//!   accepting connections.
//! * **Client** ([`KvClient`]) — a blocking client that negotiates v2 by
//!   default (`connect_v1` keeps the text mode), reports failures through
//!   the structured [`KvError`] enum, offers typed getters
//!   (`get_int`/`get_str`/`get_bytes`) and a fluent [`BatchBuilder`] for
//!   atomic multi-op transactions.
//!
//! ```
//! use stm_cm::ManagerKind;
//! use stm_kv::{KvClient, KvServer, ServerConfig, Value};
//!
//! let server = KvServer::start(ServerConfig {
//!     manager: ManagerKind::Greedy,
//!     capacity: 128,
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//!
//! let mut client = KvClient::connect(server.addr()).unwrap();
//! client.put(1, 100).unwrap();
//! client.put(2, 100).unwrap();
//! client.put(3, "binary-safe\nstring \0 ✓").unwrap();
//! // Atomically move 25 from key 1 to key 2.
//! client.transfer(1, 2, 25).unwrap();
//! assert_eq!(client.get_int(1).unwrap(), Some(75));
//! assert_eq!(client.get_str(3).unwrap().as_deref(), Some("binary-safe\nstring \0 ✓"));
//! // A fluent atomic batch.
//! let replies = client
//!     .batch_builder()
//!     .add(1, -5)
//!     .add(2, 5)
//!     .get(3)
//!     .run()
//!     .unwrap();
//! assert_eq!(replies.len(), 3);
//! assert_eq!(client.sum(0, 2).unwrap(), (200, 2));
//! client.quit().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub(crate) mod event_loop;
pub mod proto;
pub mod server;
pub mod store;
pub(crate) mod telemetry;

/// The typed value enum (`Int` / `Str` / `Bytes`) — one type from the wire
/// protocol through [`KvStore`] into the `stm-log` write-ahead log.
pub use stm_core::CommitValue as Value;

/// The reassembled histogram type [`client::MetricsSnapshot::histogram`]
/// returns — the same type the server records into, so client-side
/// quantiles agree with server-side accounting bucket-for-bucket.
pub use metrics::HistogramSnapshot;

pub use client::{
    BatchBuilder, BatchOp, KvClient, KvError, MetricsSnapshot, ServerStatsSnapshot,
    WalStatsSnapshot,
};
pub use proto::{
    parse_reply, parse_request, render_reply, render_request, ErrorCode, ProtoError, Reply,
    Request,
};
pub use server::{KvServer, ServeMode, ServerConfig};
pub use store::{KvStore, TypeMismatch};
