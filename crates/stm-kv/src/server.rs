//! The TCP server: a listener, a worker-thread pool, and one STM
//! transaction per request.
//!
//! The server is deliberately std-only (`std::net::TcpListener`, blocking
//! I/O, a `mpsc` hand-off queue): the point of `stm-kv` is to measure the
//! *runtime's* behaviour under wire-driven contention, not to benchmark an
//! async reactor. Each worker thread owns a [`stm_core::ThreadCtx`] — and
//! therefore its own contention-manager instance, keeping managers
//! decentralised exactly as in the in-process harness — and handles one
//! connection at a time to completion.
//!
//! Every data request executes as one `atomically` call; a `BEGIN`/`EXEC`
//! batch executes all of its queued operations inside a single
//! `atomically` call, which is what makes multi-key batches serializable
//! across clients by construction: the runtime provides safety, and the
//! [`ManagerKind`] chosen at server start provides progress.
//!
//! Reads use a short socket timeout so workers notice a shutdown request
//! even while a client connection sits idle; [`KvServer::shutdown`] stops
//! the pool, unblocks the acceptor with a loopback connection, and joins
//! every thread.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use stm_cm::{ManagerKind, ManagerParams};
use stm_core::{Stm, ThreadCtx, TxResult, Txn};

use crate::proto::{parse_request, render_reply, Reply, Request};
use crate::store::KvStore;

/// How long a worker blocks on a socket read (or on the connection queue)
/// before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Configuration of a [`KvServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. The default binds an ephemeral loopback port; read the
    /// actual address back with [`KvServer::addr`].
    pub addr: String,
    /// Contention manager arbitrating every transaction on this server.
    pub manager: ManagerKind,
    /// Manager parameters (defaults reproduce the registry defaults).
    pub params: ManagerParams,
    /// Keyspace size: keys are `0..capacity`.
    pub capacity: i64,
    /// Number of index shards in the store.
    pub shards: usize,
    /// Worker threads. Each worker serves one connection at a time, so this
    /// is also the number of concurrently served clients.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            manager: ManagerKind::Greedy,
            params: ManagerParams::default(),
            capacity: 65_536,
            shards: 16,
            workers: (2 * parallelism).max(4),
        }
    }
}

/// Shared request counters, folded into the `STATS` reply next to the STM's
/// own commit/abort counters.
#[derive(Debug, Default)]
pub(crate) struct ServerCounters {
    /// Client connections accepted.
    pub(crate) connections: AtomicU64,
    /// Requests executed (single data ops; a batch counts once).
    pub(crate) requests: AtomicU64,
    /// `BEGIN`/`EXEC` batches executed.
    pub(crate) batches: AtomicU64,
    /// Aborted attempts across all request transactions (per-request
    /// accounting from [`stm_core::TxRunReport`]).
    pub(crate) retries: AtomicU64,
    /// `ERR` replies sent.
    pub(crate) errors: AtomicU64,
}

/// A running key-value server. Dropping it shuts it down.
pub struct KvServer {
    addr: SocketAddr,
    manager: ManagerKind,
    stm: Arc<Stm>,
    store: Arc<KvStore>,
    counters: Arc<ServerCounters>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for KvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServer")
            .field("addr", &self.addr)
            .field("manager", &self.manager.name())
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl KvServer {
    /// Binds the listener and spawns the acceptor and the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the address cannot be bound.
    pub fn start(config: ServerConfig) -> std::io::Result<KvServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stm = Arc::new(
            Stm::builder()
                .manager(config.manager.factory_with(config.params))
                .build(),
        );
        let store = Arc::new(KvStore::new(config.capacity, config.shards));
        let counters = Arc::new(ServerCounters::default());
        let stop = Arc::new(AtomicBool::new(false));

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for worker_id in 0..config.workers.max(1) {
            let stm = Arc::clone(&stm);
            let store = Arc::clone(&store);
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            let conn_rx = Arc::clone(&conn_rx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("stm-kv-worker-{worker_id}"))
                    .spawn(move || {
                        let mut ctx = stm.thread();
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            let next = conn_rx
                                .lock()
                                .expect("connection queue lock poisoned")
                                .recv_timeout(POLL_INTERVAL);
                            match next {
                                Ok(stream) => {
                                    serve_connection(stream, &mut ctx, &store, &counters, &stop);
                                }
                                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                                Err(mpsc::RecvTimeoutError::Disconnected) => return,
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }

        let acceptor = {
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("stm-kv-acceptor".to_string())
                .spawn(move || {
                    // `conn_tx` moves in here; dropping it on exit tells idle
                    // workers the server is gone.
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        let Ok(stream) = stream else { continue };
                        counters.connections.fetch_add(1, Ordering::Relaxed);
                        if conn_tx.send(stream).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };

        Ok(KvServer {
            addr,
            manager: config.manager,
            stm,
            store,
            counters,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address the server actually listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The contention manager this server runs under.
    pub fn manager(&self) -> ManagerKind {
        self.manager
    }

    /// Snapshot of the underlying STM's statistics.
    pub fn stm_stats(&self) -> stm_core::stats::StatsSnapshot {
        self.stm.stats().snapshot()
    }

    /// The underlying store (for in-process audits in tests and examples;
    /// run transactions against it via [`KvServer::stm`]).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// The underlying STM instance.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Total aborted attempts attributed to client requests so far.
    pub fn request_retries(&self) -> u64 {
        self.counters.retries.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains the pool, and joins every thread. Idempotent;
    /// also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's `incoming()` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Applies one data operation inside the caller's transaction.
fn apply(store: &KvStore, tx: &mut Txn<'_>, request: &Request) -> TxResult<Reply> {
    Ok(match *request {
        Request::Get(key) => match store.get(tx, key)? {
            Some(value) => Reply::Value(value),
            None => Reply::Nil,
        },
        Request::Put(key, value) => {
            store.put(tx, key, value)?;
            Reply::Ok
        }
        Request::Del(key) => Reply::OkN(i64::from(store.del(tx, key)?.is_some())),
        Request::Add(key, delta) => Reply::Value(store.add(tx, key, delta)?),
        Request::Range(lo, hi) => Reply::Range(store.range(tx, lo, hi)?),
        Request::Sum(lo, hi) => {
            let (total, count) = store.sum(tx, lo, hi)?;
            Reply::Sum(total, count)
        }
        // Non-data requests never reach `apply`.
        Request::Begin
        | Request::Exec
        | Request::Ping
        | Request::Stats
        | Request::Quit => Reply::Err("internal: non-data op in transaction".to_string()),
    })
}

/// Rejects keys outside the store before any transaction starts.
fn validate(store: &KvStore, request: &Request) -> Result<(), String> {
    let key = match *request {
        Request::Get(key) | Request::Del(key) | Request::Put(key, _) | Request::Add(key, _) => key,
        // Range bounds are clamped by the store instead.
        _ => return Ok(()),
    };
    if store.key_in_range(key) {
        Ok(())
    } else {
        Err(format!("key {key} outside keyspace 0..{}", store.capacity()))
    }
}

/// The `STATS` reply line: stable `key=value` pairs so clients can parse it.
fn render_stats(stm: &Stm, counters: &ServerCounters) -> String {
    let snapshot = stm.stats().snapshot();
    format!(
        "STATS commits={} aborts={} requests={} batches={} retries={} errors={} connections={}",
        snapshot.commits,
        snapshot.aborts,
        counters.requests.load(Ordering::Relaxed),
        counters.batches.load(Ordering::Relaxed),
        counters.retries.load(Ordering::Relaxed),
        counters.errors.load(Ordering::Relaxed),
        counters.connections.load(Ordering::Relaxed),
    )
}

/// Per-connection `BEGIN`/`EXEC` state.
///
/// A failure while a batch is open (bad key, unknown verb, disallowed
/// command) moves the batch to `Poisoned` instead of discarding it: clients
/// pipeline entire batches before reading any reply, so the already-sent
/// tail of a discarded batch would otherwise execute as standalone
/// transactions — silently breaking the batch's all-or-nothing contract.
/// A poisoned batch swallows every further data op (with an `ERR`) until
/// `EXEC`, which reports the failure and clears the state.
enum Batch {
    None,
    Open(Vec<Request>),
    Poisoned,
}

/// Serves one connection until the peer quits, disconnects, or the server
/// shuts down.
fn serve_connection(
    stream: TcpStream,
    ctx: &mut ThreadCtx<'_>,
    store: &KvStore,
    counters: &ServerCounters,
    stop: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    let mut batch = Batch::None;

    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(err)
                if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let request = parse_request(&line);
        line.clear();
        let in_batch = !matches!(batch, Batch::None);
        let mut out;
        let mut quit = false;
        match request {
            Err(message) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
                if in_batch {
                    batch = Batch::Poisoned;
                }
                out = render_reply(&Reply::Err(message));
            }
            Ok(request) => match request {
                Request::Quit => {
                    out = render_reply(&Reply::Bye);
                    quit = true;
                }
                Request::Ping if !in_batch => out = render_reply(&Reply::Pong),
                Request::Stats if !in_batch => {
                    out = render_stats(ctx.stm(), counters);
                }
                Request::Begin if !in_batch => {
                    batch = Batch::Open(Vec::new());
                    out = render_reply(&Reply::Ok);
                }
                Request::Begin | Request::Ping | Request::Stats => {
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                    batch = Batch::Poisoned;
                    out = render_reply(&Reply::Err(
                        "command not allowed inside BEGIN/EXEC batch".to_string(),
                    ));
                }
                Request::Exec => match std::mem::replace(&mut batch, Batch::None) {
                    Batch::None => {
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                        out = render_reply(&Reply::Err("EXEC without BEGIN".to_string()));
                    }
                    Batch::Poisoned => {
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                        out = render_reply(&Reply::Err(
                            "batch aborted by an earlier error; nothing executed".to_string(),
                        ));
                    }
                    Batch::Open(ops) => {
                        counters.batches.fetch_add(1, Ordering::Relaxed);
                        let (result, report) = ctx.atomically_traced(|tx| {
                            let mut replies = Vec::with_capacity(ops.len());
                            for op in &ops {
                                replies.push(apply(store, tx, op)?);
                            }
                            Ok(replies)
                        });
                        counters.retries.fetch_add(report.aborts, Ordering::Relaxed);
                        match result {
                            Ok(replies) => {
                                out = format!("EXEC {}", replies.len());
                                for reply in &replies {
                                    out.push('\n');
                                    out.push_str(&render_reply(reply));
                                }
                            }
                            Err(err) => {
                                counters.errors.fetch_add(1, Ordering::Relaxed);
                                out = render_reply(&Reply::Err(format!(
                                    "batch failed: {err}"
                                )));
                            }
                        }
                    }
                },
                data_op => match validate(store, &data_op) {
                    Err(message) => {
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                        if in_batch {
                            batch = Batch::Poisoned;
                        }
                        out = render_reply(&Reply::Err(message));
                    }
                    Ok(()) => match &mut batch {
                        Batch::Open(ops) => {
                            ops.push(data_op);
                            out = render_reply(&Reply::Queued);
                        }
                        Batch::Poisoned => {
                            // Swallow without executing: the client already
                            // pipelined this op as part of the failed batch.
                            counters.errors.fetch_add(1, Ordering::Relaxed);
                            out = render_reply(&Reply::Err(
                                "batch aborted by an earlier error".to_string(),
                            ));
                        }
                        Batch::None => {
                            counters.requests.fetch_add(1, Ordering::Relaxed);
                            let (result, report) =
                                ctx.atomically_traced(|tx| apply(store, tx, &data_op));
                            counters.retries.fetch_add(report.aborts, Ordering::Relaxed);
                            out = match result {
                                Ok(reply) => render_reply(&reply),
                                Err(err) => {
                                    counters.errors.fetch_add(1, Ordering::Relaxed);
                                    render_reply(&Reply::Err(format!(
                                        "transaction failed: {err}"
                                    )))
                                }
                            };
                        }
                    },
                },
            },
        }
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if quit {
            return;
        }
        // Bounded shutdown even against a client that never stops sending:
        // the flag is also honoured between fully-served requests, not only
        // on idle reads.
        if stop.load(Ordering::Relaxed) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_starts_and_shuts_down_cleanly() {
        let mut server = KvServer::start(ServerConfig {
            capacity: 16,
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        assert_eq!(server.manager(), ManagerKind::Greedy);
        assert!(server.addr().port() != 0);
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn shutdown_returns_while_a_client_keeps_sending() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let mut server = KvServer::start(ServerConfig {
            capacity: 16,
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.addr();
        let done = Arc::new(AtomicBool::new(false));
        let hammer = {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                // A closed-loop client that never goes idle: the worker's
                // reads keep returning data, so shutdown must be honoured
                // between requests, not only on read timeouts.
                let Ok(stream) = TcpStream::connect(addr) else { return };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut reply = String::new();
                while !done.load(Ordering::Relaxed) {
                    if writer.write_all(b"PING\n").is_err() {
                        break;
                    }
                    reply.clear();
                    if reader.read_line(&mut reply).unwrap_or(0) == 0 {
                        break;
                    }
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        server.shutdown(); // must join every worker despite the busy client
        done.store(true, Ordering::Relaxed);
        hammer.join().unwrap();
    }

    #[test]
    fn raw_socket_session_speaks_the_protocol() {
        let server = KvServer::start(ServerConfig {
            capacity: 32,
            shards: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut say = |cmd: &str, reader: &mut BufReader<TcpStream>| -> String {
            writer.write_all(format!("{cmd}\n").as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };
        assert_eq!(say("PING", &mut reader), "PONG");
        assert_eq!(say("PUT 3 30", &mut reader), "OK");
        assert_eq!(say("GET 3", &mut reader), "VALUE 30");
        assert_eq!(say("GET 4", &mut reader), "NIL");
        assert_eq!(say("ADD 4 5", &mut reader), "VALUE 5");
        assert_eq!(say("RANGE 0 31", &mut reader), "RANGE 2 3=30 4=5");
        assert_eq!(say("SUM 0 31", &mut reader), "SUM 35 2");
        assert_eq!(say("DEL 3", &mut reader), "OK 1");
        assert_eq!(say("DEL 3", &mut reader), "OK 0");
        assert!(say("GET 99", &mut reader).starts_with("ERR key 99 outside"));
        assert!(say("NOPE", &mut reader).starts_with("ERR unknown command"));
        // A batch: two queued ops executed atomically.
        assert_eq!(say("BEGIN", &mut reader), "OK");
        assert_eq!(say("ADD 4 -5", &mut reader), "QUEUED");
        assert_eq!(say("ADD 5 5", &mut reader), "QUEUED");
        assert_eq!(say("EXEC", &mut reader), "EXEC 2");
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        assert_eq!(l.trim_end(), "VALUE 0");
        l.clear();
        reader.read_line(&mut l).unwrap();
        assert_eq!(l.trim_end(), "VALUE 5");
        assert_eq!(say("EXEC", &mut reader), "ERR EXEC without BEGIN");
        let stats = say("STATS", &mut reader);
        assert!(stats.starts_with("STATS commits="), "got '{stats}'");
        assert_eq!(say("QUIT", &mut reader), "BYE");
    }
}
