//! The TCP server: a listener, a worker-thread pool, one STM transaction
//! per request — and, optionally, a durable commit log underneath.
//!
//! The server is deliberately synchronous (`std::net::TcpListener`,
//! blocking I/O, a mutex-and-condvar hand-off queue): the point of
//! `stm-kv` is to measure the *runtime's* behaviour under wire-driven
//! contention, not to benchmark an async reactor. The queue uses the
//! vendored `parking_lot` primitives rather than std's poisoning mutex so
//! one worker panicking mid-request cannot poison the hand-off and cascade
//! the panic across the whole pool. Each worker thread owns a [`stm_core::ThreadCtx`] — and
//! therefore its own contention-manager instance, keeping managers
//! decentralised exactly as in the in-process harness — and handles one
//! connection at a time to completion.
//!
//! Every data request executes as one `atomically` call; a `BEGIN`/`EXEC`
//! batch executes all of its queued operations inside a single
//! `atomically` call, which is what makes multi-key batches serializable
//! across clients by construction: the runtime provides safety, and the
//! [`ManagerKind`] chosen at server start provides progress.
//!
//! **Protocol negotiation.** Every connection starts in the v1 text
//! framing; a `HELLO 2` switches it to the binary-safe v2 frames — per
//! connection, so v1 and v2 clients share one keyspace concurrently (the
//! request model and the transaction underneath are identical; only the
//! framing differs). The switch takes effect for the first byte after the
//! `HELLO` line, which means a pipelined burst may carry the handshake and
//! v2 frames in one write.
//!
//! **Pipelining.** The connection loop is batch-oriented: every complete
//! request buffered on the socket is parsed and executed before any reply
//! is written, and all the replies go back in one flush. A closed-loop
//! client sees identical semantics; a pipelining client amortises the
//! request/reply round trip over the whole burst.
//!
//! **Durability.** With [`ServerConfig::wal_dir`] set, the server opens a
//! [`stm_log::Wal`] in that directory, recovers the keyspace from the
//! latest snapshot plus log replay before accepting connections (v1-era
//! integer-only logs replay losslessly), and installs the log's commit
//! hook on the STM so every mutating request's write-set — typed values
//! included — is appended to the log in serialization order. Under the
//! `every` fsync policy a mutating request's reply is withheld until its
//! record is fsynced (group commit: one fsync covers every request that
//! committed meanwhile); the `n=`/`ms=` policies reply immediately and
//! bound the loss window instead. `SNAPSHOT` forces a point-in-time
//! snapshot; [`ServerConfig::snapshot_every`] takes one automatically every
//! N logged records.
//!
//! Reads use a short socket timeout so workers notice a shutdown request
//! even while a client connection sits idle; [`KvServer::shutdown`] stops
//! the pool, unblocks the acceptor with a loopback connection, joins every
//! thread, and flushes the log.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use stm_cm::{ManagerKind, ManagerParams};
use stm_core::{AbortCause, CommitOp, Stm, ThreadCtx, TxResult, Txn};
use stm_log::{FsyncPolicy, Wal, WalConfig};

use crate::proto::{
    decode_frame, parse_request, parse_request_v2, render_reply, render_reply_v2, ErrorCode,
    FrameError, ProtoVersion, Reply, Request, MAX_PROTOCOL_VERSION,
};
use crate::store::KvStore;
use crate::telemetry::{elapsed_us, op_index, Telemetry, OP_EXEC};

/// How long a worker blocks on a socket read (or on the connection queue)
/// before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Recovery replays at most this many logged write-sets per transaction.
const REPLAY_CHUNK: usize = 512;

/// How the server maps connections onto threads.
///
/// Both modes speak byte-for-byte the same protocol through the same
/// request-processing core ([`process_buffered`]); they differ only in how
/// sockets are multiplexed, which makes them differential-testable against
/// each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// The original thread-per-connection worker pool: each worker serves
    /// one connection to completion with blocking reads. Concurrency is
    /// capped by [`ServerConfig::workers`]; idle connections pin threads.
    Threads,
    /// The readiness event loop: [`ServerConfig::event_shards`] shard
    /// threads each own a `minipoll::Poller` and a slab of non-blocking
    /// connections, so thousands of mostly-idle connections cost one
    /// registration each instead of one thread each.
    Events,
}

impl ServeMode {
    /// Stable lowercase label (CLI flag value, bench row field).
    pub fn label(self) -> &'static str {
        match self {
            ServeMode::Threads => "threads",
            ServeMode::Events => "events",
        }
    }

    /// Parses a CLI/env spelling of a serve mode.
    pub fn parse(s: &str) -> Option<ServeMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "threads" | "thread" | "pool" => Some(ServeMode::Threads),
            "events" | "event" | "epoll" => Some(ServeMode::Events),
            _ => None,
        }
    }
}

/// Configuration of a [`KvServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. The default binds an ephemeral loopback port; read the
    /// actual address back with [`KvServer::addr`].
    pub addr: String,
    /// Contention manager arbitrating every transaction on this server.
    pub manager: ManagerKind,
    /// Manager parameters (defaults reproduce the registry defaults).
    pub params: ManagerParams,
    /// Value cells pre-allocated for keys `0..capacity` (a warm-up hint —
    /// the keyspace grows on demand and accepts any `i64` key).
    pub capacity: i64,
    /// Number of index shards in the store.
    pub shards: usize,
    /// Worker threads. Each worker serves one connection at a time, so this
    /// is also the number of concurrently served clients.
    pub workers: usize,
    /// Directory for the write-ahead log and snapshots. `None` (the
    /// default) runs the server volatile, exactly as before.
    pub wal_dir: Option<PathBuf>,
    /// Fsync policy of the log (ignored without `wal_dir`).
    pub fsync: FsyncPolicy,
    /// Take a snapshot automatically every this many logged records
    /// (0 = only on explicit `SNAPSHOT`; ignored without `wal_dir`).
    pub snapshot_every: u64,
    /// How connections map onto threads. The default is
    /// [`ServeMode::Threads`] (the original pool) unless the
    /// `STM_KV_SERVE_MODE` environment variable names a mode — the hook the
    /// differential CI matrix uses to replay every integration test through
    /// the event loop unchanged.
    pub serve_mode: ServeMode,
    /// Event-loop shard threads (0 = one per available core; ignored in
    /// [`ServeMode::Threads`]).
    pub event_shards: usize,
    /// Close connections idle longer than this ([`ServeMode::Events`] only;
    /// zero, the default, disables reaping).
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            manager: ManagerKind::Greedy,
            params: ManagerParams::default(),
            capacity: 65_536,
            shards: 16,
            workers: (2 * parallelism).max(4),
            wal_dir: None,
            fsync: FsyncPolicy::EveryCommit,
            snapshot_every: 0,
            serve_mode: std::env::var("STM_KV_SERVE_MODE")
                .ok()
                .as_deref()
                .and_then(ServeMode::parse)
                .unwrap_or(ServeMode::Threads),
            event_shards: 0,
            idle_timeout: Duration::ZERO,
        }
    }
}

/// Shared request counters, folded into the `STATS` reply next to the STM's
/// own commit/abort counters.
#[derive(Debug, Default)]
pub(crate) struct ServerCounters {
    /// Client connections accepted.
    pub(crate) connections: AtomicU64,
    /// Requests executed (single data ops; a batch counts once).
    pub(crate) requests: AtomicU64,
    /// `BEGIN`/`EXEC` batches executed.
    pub(crate) batches: AtomicU64,
    /// Aborted attempts across all request transactions (per-request
    /// accounting from [`stm_core::TxRunReport`]).
    pub(crate) retries: AtomicU64,
    /// `ERR` replies sent.
    pub(crate) errors: AtomicU64,
    /// Connections currently being served (registered in an event-loop
    /// shard, or claimed by a worker thread in pool mode).
    pub(crate) conns_open: AtomicU64,
    /// Connections closed by the event loop's idle-timeout reaper.
    pub(crate) conns_reaped_idle: AtomicU64,
    /// Reply flushes that could not complete in one write and had to park
    /// the remainder behind write-readiness (event mode only; pool mode
    /// blocks in `write_all` instead).
    pub(crate) partial_writes: AtomicU64,
}

/// The acceptor → worker connection hand-off.
///
/// Built on the vendored `parking_lot` mutex and condvar: neither poisons,
/// so a worker that panics inside `serve_connection` (or while holding the
/// queue lock) takes down only its own thread — the remaining workers keep
/// draining connections instead of unwinding on an `Err(PoisonError)`
/// cascade, and the server keeps serving at reduced capacity.
struct ConnQueue {
    pending: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    /// Set when the acceptor is gone; workers drain what is queued and exit.
    closed: AtomicBool,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue {
            pending: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    /// Acceptor side: enqueues a connection and wakes one idle worker.
    /// Returns `false` once the queue is closed.
    fn push(&self, stream: TcpStream) -> bool {
        if self.closed.load(Ordering::Relaxed) {
            return false;
        }
        self.pending.lock().push_back(stream);
        self.ready.notify_one();
        true
    }

    /// Worker side: the next connection, waiting up to `timeout` for one to
    /// arrive. `None` means "nothing yet" — the caller re-checks its stop
    /// flag and [`ConnQueue::is_drained`], mirroring the old
    /// `recv_timeout` poll loop.
    fn pop(&self, timeout: Duration) -> Option<TcpStream> {
        let mut pending = self.pending.lock();
        if let Some(stream) = pending.pop_front() {
            return Some(stream);
        }
        if self.closed.load(Ordering::Relaxed) {
            return None;
        }
        let _ = self.ready.wait_for(&mut pending, timeout);
        pending.pop_front()
    }

    /// Whether the acceptor is gone *and* every queued connection has been
    /// claimed — the worker exit condition.
    fn is_drained(&self) -> bool {
        self.closed.load(Ordering::Relaxed) && self.pending.lock().is_empty()
    }

    fn close(&self) {
        // ordering: the closed latch must be visible before the wakeup so a
        // woken worker's drain check cannot miss it and sleep again.
        self.closed.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

/// The durable half of the server, shared by every worker/shard.
pub(crate) struct Durable {
    pub(crate) wal: Arc<Wal>,
    /// Whether mutating replies wait for their record's fsync.
    sync_replies: bool,
    /// Auto-snapshot threshold (0 = never).
    snapshot_every: u64,
}

/// The serving threads behind a running [`KvServer`] — one variant per
/// [`ServeMode`].
enum ServeBackend {
    Threads {
        acceptor: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
    },
    Events(crate::event_loop::EventLoops),
}

/// A running key-value server. Dropping it shuts it down.
pub struct KvServer {
    addr: SocketAddr,
    manager: ManagerKind,
    serve_mode: ServeMode,
    stm: Arc<Stm>,
    store: Arc<KvStore>,
    counters: Arc<ServerCounters>,
    telemetry: Arc<Telemetry>,
    durable: Option<Arc<Durable>>,
    stop: Arc<AtomicBool>,
    backend: Option<ServeBackend>,
}

impl std::fmt::Debug for KvServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServer")
            .field("addr", &self.addr)
            .field("manager", &self.manager.name())
            .field("serve_mode", &self.serve_mode.label())
            .field("durable", &self.durable.is_some())
            .finish()
    }
}

impl KvServer {
    /// Binds the listener, recovers the keyspace when a `wal_dir` is
    /// configured, and spawns the acceptor and the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the address cannot be bound or
    /// the log directory cannot be opened/recovered.
    pub fn start(config: ServerConfig) -> std::io::Result<KvServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let opened_wal = match &config.wal_dir {
            Some(dir) => {
                let (wal, recovered) = Wal::open(WalConfig {
                    dir: dir.clone(),
                    fsync: config.fsync,
                    segment_bytes: 8 << 20,
                })?;
                Some((Arc::new(wal), recovered))
            }
            None => None,
        };

        let mut stm_builder = Stm::builder().manager(config.manager.factory_with(config.params));
        if let Some((wal, _)) = &opened_wal {
            stm_builder = stm_builder.commit_hook(wal.commit_hook());
        }
        let stm = Arc::new(stm_builder.build());
        let store = Arc::new(KvStore::with_preallocated(config.shards, config.capacity));

        let durable = match opened_wal {
            Some((wal, recovered)) => {
                replay_recovered(&stm, &store, &recovered);
                Some(Arc::new(Durable {
                    sync_replies: wal.policy() == FsyncPolicy::EveryCommit,
                    snapshot_every: config.snapshot_every,
                    wal,
                }))
            }
            None => None,
        };

        let counters = Arc::new(ServerCounters::default());
        let telemetry = Arc::new(Telemetry::new());
        let stop = Arc::new(AtomicBool::new(false));

        let backend = match config.serve_mode {
            ServeMode::Threads => Self::start_thread_pool(
                listener, &config, &stm, &store, &counters, &telemetry, &durable, &stop,
            ),
            ServeMode::Events => {
                ServeBackend::Events(crate::event_loop::EventLoops::start(
                    crate::event_loop::EventConfig {
                        shards: config.event_shards,
                        idle_timeout: config.idle_timeout,
                    },
                    listener,
                    Arc::clone(&stm),
                    Arc::clone(&store),
                    Arc::clone(&counters),
                    Arc::clone(&telemetry),
                    durable.clone(),
                    Arc::clone(&stop),
                )?)
            }
        };

        Ok(KvServer {
            addr,
            manager: config.manager,
            serve_mode: config.serve_mode,
            stm,
            store,
            counters,
            telemetry,
            durable,
            stop,
            backend: Some(backend),
        })
    }

    /// Spawns the original acceptor + worker-pool serving threads.
    #[allow(clippy::too_many_arguments)]
    fn start_thread_pool(
        listener: TcpListener,
        config: &ServerConfig,
        stm: &Arc<Stm>,
        store: &Arc<KvStore>,
        counters: &Arc<ServerCounters>,
        telemetry: &Arc<Telemetry>,
        durable: &Option<Arc<Durable>>,
        stop: &Arc<AtomicBool>,
    ) -> ServeBackend {
        let queue = Arc::new(ConnQueue::new());

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for worker_id in 0..config.workers.max(1) {
            let stm = Arc::clone(stm);
            let store = Arc::clone(store);
            let counters = Arc::clone(counters);
            let telemetry = Arc::clone(telemetry);
            let stop = Arc::clone(stop);
            let queue = Arc::clone(&queue);
            let durable = durable.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("stm-kv-worker-{worker_id}"))
                    .spawn(move || {
                        let mut ctx = stm.thread();
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            match queue.pop(POLL_INTERVAL) {
                                Some(stream) => {
                                    serve_connection(
                                        stream,
                                        &mut ctx,
                                        &store,
                                        &counters,
                                        &telemetry,
                                        durable.as_deref(),
                                        &stop,
                                    );
                                }
                                None if queue.is_drained() => return,
                                None => continue,
                            }
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }

        let acceptor = {
            let counters = Arc::clone(counters);
            let stop = Arc::clone(stop);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("stm-kv-acceptor".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        counters.connections.fetch_add(1, Ordering::Relaxed);
                        if !queue.push(stream) {
                            break;
                        }
                    }
                    // Closing on every exit path tells idle workers the
                    // server is gone (the old design dropped an `mpsc`
                    // sender for the same effect).
                    queue.close();
                })
                .expect("spawn acceptor thread")
        };

        ServeBackend::Threads {
            acceptor: Some(acceptor),
            workers,
        }
    }

    /// The address the server actually listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The contention manager this server runs under.
    pub fn manager(&self) -> ManagerKind {
        self.manager
    }

    /// Snapshot of the underlying STM's statistics.
    pub fn stm_stats(&self) -> stm_core::stats::StatsSnapshot {
        self.stm.stats().snapshot()
    }

    /// The underlying store (for in-process audits in tests and examples;
    /// run transactions against it via [`KvServer::stm`]).
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// The underlying STM instance.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// The write-ahead log, when the server runs durable.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.durable.as_ref().map(|d| &d.wal)
    }

    /// Total aborted attempts attributed to client requests so far.
    pub fn request_retries(&self) -> u64 {
        self.counters.retries.load(Ordering::Relaxed)
    }

    /// Connections currently being served. Must be zero after
    /// [`KvServer::shutdown`] returns — the graceful drain closes (and
    /// un-counts) every connection it finishes with, in both serve modes.
    pub fn conns_open(&self) -> u64 {
        self.counters.conns_open.load(Ordering::Relaxed)
    }

    /// The full `METRICS` exposition, as a wire client would scrape it
    /// (in-process hook for tests and the bench harness).
    pub fn metrics_text(&self) -> String {
        metrics_payload(
            &self.stm,
            &self.counters,
            &self.store,
            self.durable.as_deref(),
            &self.telemetry,
        )
    }

    /// Which serve mode this server runs in.
    pub fn serve_mode(&self) -> ServeMode {
        self.serve_mode
    }

    /// Stops accepting, gracefully drains every in-flight connection
    /// (pending replies are flushed before sockets close), joins every
    /// serving thread, and flushes the log. Idempotent; also invoked by
    /// `Drop`.
    pub fn shutdown(&mut self) {
        // ordering: first-shutdown latch; SeqCst orders it ahead of the
        // acceptor poke below so the woken acceptor observes it and exits.
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's `incoming()` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        match self.backend.take() {
            Some(ServeBackend::Threads {
                acceptor,
                mut workers,
            }) => {
                if let Some(acceptor) = acceptor {
                    let _ = acceptor.join();
                }
                for worker in workers.drain(..) {
                    let _ = worker.join();
                }
            }
            Some(ServeBackend::Events(loops)) => loops.shutdown(),
            None => {}
        }
        // Workers are gone, so this is the last strong reference to the
        // `Wal` wrapper; shut it down explicitly for a deterministic final
        // flush + fsync (Drop would do the same).
        if let Some(durable) = self.durable.take() {
            if let Ok(durable) = Arc::try_unwrap(durable) {
                if let Ok(mut wal) = Arc::try_unwrap(durable.wal) {
                    wal.shutdown();
                }
            }
        }
    }
}

impl Drop for KvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Rebuilds the store from what recovery found. The snapshot pairs and log
/// tail are first folded down to the final live key set
/// ([`stm_log::Recovered::live_pairs`]) so replay only ever PUTs keys that
/// survive: a key whose last logged op was a `Del` never materialises a
/// value cell, instead of being allocated by an intermediate `Put` and then
/// tombstoned again. Replay runs in chunks so no single transaction grows
/// unboundedly; replay transactions publish nothing, so they are not
/// re-logged.
fn replay_recovered(stm: &Stm, store: &KvStore, recovered: &stm_log::Recovered) {
    let mut ctx = stm.thread();
    for chunk in recovered.live_pairs().chunks(REPLAY_CHUNK) {
        ctx.atomically(|tx| {
            for (key, value) in chunk {
                store.put(tx, *key, value.clone())?;
            }
            Ok(())
        })
        .expect("recovery replay transaction must commit");
    }
}

/// Applies one data operation inside the caller's transaction, publishing
/// the write-set to the commit log when the server runs durable.
///
/// A [`TypeMismatch`](crate::TypeMismatch) from `ADD`/`SUM` is a `TYPE`
/// error reply. For a standalone request that is the whole story (the
/// failed op wrote nothing). Inside a `BEGIN`/`EXEC` batch the caller
/// (`handle_exec`) aborts the **entire transaction** on a type error:
/// committing the other ops while one `ADD` silently failed would let a
/// `transfer` debit one account without crediting the other — destroying
/// the conservation invariant the batch contract exists to protect.
fn apply(store: &KvStore, tx: &mut Txn<'_>, request: &Request, log: bool) -> TxResult<Reply> {
    Ok(match request {
        Request::Get(key) => match store.get(tx, *key)? {
            Some(value) => Reply::Value(value),
            None => Reply::Nil,
        },
        Request::Put(key, value) => {
            store.put(tx, *key, value.clone())?;
            if log {
                tx.publish(CommitOp::Put {
                    id: *key,
                    value: value.clone(),
                });
            }
            Reply::Ok
        }
        Request::Del(key) => {
            let removed = store.del(tx, *key)?.is_some();
            if log && removed {
                tx.publish(CommitOp::Del { id: *key });
            }
            Reply::OkN(i64::from(removed))
        }
        Request::Add(key, delta) => match store.add(tx, *key, *delta)? {
            Ok(value) => {
                if log {
                    tx.publish(CommitOp::put(*key, value));
                }
                Reply::Value(crate::Value::Int(value))
            }
            Err(mismatch) => Reply::err(ErrorCode::Type, mismatch.to_string()),
        },
        Request::Range(lo, hi) => Reply::Range(store.range(tx, *lo, *hi)?),
        Request::Sum(lo, hi) => match store.sum(tx, *lo, *hi)? {
            Ok((total, count)) => Reply::Sum(total, count),
            Err(mismatch) => Reply::err(ErrorCode::Type, mismatch.to_string()),
        },
        // Non-data requests never reach `apply`.
        Request::Hello(_)
        | Request::Begin
        | Request::Exec
        | Request::Ping
        | Request::Stats
        | Request::Snapshot
        | Request::WalStats
        | Request::Metrics
        | Request::SlowLog(_)
        | Request::Quit => Reply::err(ErrorCode::Proto, "internal: non-data op in transaction"),
    })
}

/// The `STATS` payload: stable `key=value` pairs so clients can parse it.
/// `cells` counts every value cell ever materialised (monotone);
/// `cells_freed` is how many of those the epoch GC has reclaimed after a
/// committed `DEL`, and `limbo` is how many retired cells are still waiting
/// out their grace period — so `cells - cells_freed - limbo` is the live
/// resident cell count. `overflow` is the per-shard breakdown of cells
/// currently linked outside the pre-allocated range (comma-separated, one
/// count per shard). Together they make keyspace growth *and reclamation*
/// observable from the wire.
fn stats_payload(stm: &Stm, counters: &ServerCounters, store: &KvStore) -> String {
    let snapshot = stm.stats().snapshot();
    // Sweep reclaimable limbo entries first so the reply reflects what is
    // actually freeable now, not just what the last commit happened to sweep.
    stm.epoch().collect();
    let overflow = store
        .overflow_per_shard()
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "commits={} aborts={} requests={} batches={} retries={} errors={} connections={} \
         conns_open={} conns_accepted={} conns_reaped_idle={} partial_writes={} \
         cells={} cells_freed={} limbo={} overflow={}",
        snapshot.commits,
        snapshot.aborts,
        counters.requests.load(Ordering::Relaxed),
        counters.batches.load(Ordering::Relaxed),
        counters.retries.load(Ordering::Relaxed),
        counters.errors.load(Ordering::Relaxed),
        counters.connections.load(Ordering::Relaxed),
        counters.conns_open.load(Ordering::Relaxed),
        counters.connections.load(Ordering::Relaxed),
        counters.conns_reaped_idle.load(Ordering::Relaxed),
        counters.partial_writes.load(Ordering::Relaxed),
        store.cells_allocated(),
        stm.epoch().reclaimed_total(),
        stm.epoch().limbo_len(),
        overflow,
    )
}

/// The `WALSTATS` payload (durable servers).
fn walstats_payload(durable: &Durable) -> String {
    let stats = durable.wal.stats();
    format!(
        "policy={} next_seq={} durable_seq={} records={} bytes={} fsyncs={} \
         segments={} snapshots={} last_snapshot_seq={} since_snapshot={} failed={}",
        durable.wal.policy().label(),
        stats.next_seq,
        stats.durable_seq,
        stats.records,
        stats.bytes,
        stats.fsyncs,
        stats.segments,
        stats.snapshots,
        stats.last_snapshot_seq,
        stats.records_since_snapshot,
        u8::from(stats.failed),
    )
}

/// The `METRICS` payload: Prometheus-style text exposition composed from
/// four sections —
///
/// 1. the server's [`Telemetry`] registry (per-op latency histograms,
///    transaction attempt/latency histograms, event-loop instrumentation,
///    per-shard connection gauges);
/// 2. the STM runtime's counters, rendered from a [`StatsSnapshot`]
///    (`stm_core` itself stays dependency-free): commits, aborts **by
///    cause**, conflicts, and contention-manager decisions (`wait` =
///    waits granted, `abort_other` = enemy aborts granted, `abort_self` =
///    self-abort verdicts, recovered from the `manager_self_abort` cause
///    count);
/// 3. the server's own request/connection counters and the store's cell
///    accounting;
/// 4. when durable, the WAL's histograms ([`Wal::metrics_text`]) and its
///    counter-style stats.
///
/// [`StatsSnapshot`]: stm_core::stats::StatsSnapshot
fn metrics_payload(
    stm: &Stm,
    counters: &ServerCounters,
    store: &KvStore,
    durable: Option<&Durable>,
    telemetry: &Telemetry,
) -> String {
    use std::fmt::Write as _;
    let mut out = telemetry.render();
    let snap = stm.stats().snapshot();

    let stm_counters = [
        ("stm_transactions_total", snap.transactions),
        ("stm_attempts_total", snap.attempts),
        ("stm_commits_total", snap.commits),
        ("stm_conflicts_total", snap.conflicts),
        ("stm_waits_total", snap.waits),
        ("stm_enemy_aborts_total", snap.enemy_aborts),
        ("stm_validation_failures_total", snap.validation_failures),
    ];
    for (name, value) in stm_counters {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }
    let _ = writeln!(out, "# TYPE stm_aborts_total counter");
    for cause in AbortCause::ALL {
        let _ = writeln!(
            out,
            "stm_aborts_total{{cause=\"{}\"}} {}",
            cause.label(),
            snap.aborts_by_cause[cause.index()],
        );
    }
    let _ = writeln!(out, "# TYPE stm_manager_decisions_total counter");
    let decisions = [
        ("wait", snap.waits),
        ("abort_other", snap.enemy_aborts),
        (
            "abort_self",
            snap.aborts_by_cause[AbortCause::ManagerSelfAbort.index()],
        ),
    ];
    for (decision, value) in decisions {
        let _ = writeln!(
            out,
            "stm_manager_decisions_total{{decision=\"{decision}\"}} {value}"
        );
    }

    let server_counters = [
        ("stm_kv_connections_total", &counters.connections),
        ("stm_kv_requests_total", &counters.requests),
        ("stm_kv_batches_total", &counters.batches),
        ("stm_kv_retries_total", &counters.retries),
        ("stm_kv_errors_total", &counters.errors),
        ("stm_kv_conns_reaped_idle_total", &counters.conns_reaped_idle),
        ("stm_kv_partial_writes_total", &counters.partial_writes),
    ];
    for (name, counter) in server_counters {
        let _ = writeln!(
            out,
            "# TYPE {name} counter\n{name} {}",
            counter.load(Ordering::Relaxed)
        );
    }
    let server_gauges = [
        ("stm_kv_conns_open", counters.conns_open.load(Ordering::Relaxed)),
        ("stm_kv_cells_allocated", store.cells_allocated() as u64),
        ("stm_kv_cells_freed", stm.epoch().reclaimed_total()),
        ("stm_kv_cells_limbo", stm.epoch().limbo_len() as u64),
    ];
    for (name, value) in server_gauges {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
    }

    if let Some(durable) = durable {
        out.push_str(&durable.wal.metrics_text());
        let stats = durable.wal.stats();
        let wal_counters = [
            ("stm_wal_records_total", stats.records),
            ("stm_wal_bytes_total", stats.bytes),
            ("stm_wal_fsyncs_total", stats.fsyncs),
            ("stm_wal_snapshots_total", stats.snapshots),
        ];
        for (name, value) in wal_counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        let wal_gauges = [
            ("stm_wal_next_seq", stats.next_seq),
            ("stm_wal_durable_seq", stats.durable_seq),
            ("stm_wal_segments", stats.segments),
        ];
        for (name, value) in wal_gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
    }
    out
}

/// Per-connection `BEGIN`/`EXEC` state.
///
/// A failure while a batch is open (bad request, disallowed command) moves
/// the batch to `Poisoned` instead of discarding it: clients pipeline
/// entire batches before reading any reply, so the already-sent tail of a
/// discarded batch would otherwise execute as standalone transactions —
/// silently breaking the batch's all-or-nothing contract. A poisoned batch
/// swallows every further data op (with an `ERR`) until `EXEC`, which
/// reports the failure and clears the state.
enum Batch {
    None,
    Open(Vec<Request>),
    Poisoned,
}

/// The protocol state that persists across bursts for one connection:
/// framing generation, open batch, and quit latch. Both serve modes keep
/// exactly one of these per connection — on the worker's stack in pool
/// mode, in the shard's connection slab in event mode.
pub(crate) struct ConnState {
    batch: Batch,
    /// Which framing this connection currently speaks (`HELLO` switches).
    proto: ProtoVersion,
    quit: bool,
}

impl ConnState {
    pub(crate) fn new() -> ConnState {
        ConnState {
            batch: Batch::None,
            proto: ProtoVersion::V1,
            quit: false,
        }
    }

    /// Whether the connection asked to close (QUIT, or an unrecoverable
    /// framing error). The remaining replies still go out first.
    pub(crate) fn quit(&self) -> bool {
        self.quit
    }
}

/// Everything one burst of request processing needs: the per-shard/-worker
/// execution context plus the connection's persistent [`ConnState`].
struct Session<'a, 'stm> {
    ctx: &'a mut ThreadCtx<'stm>,
    store: &'a KvStore,
    counters: &'a ServerCounters,
    telemetry: &'a Telemetry,
    durable: Option<&'a Durable>,
    conn: &'a mut ConnState,
    /// Highest commit sequence number this reply burst must wait on before
    /// it is flushed (synchronous-durability policies only).
    flush_barrier: Option<u64>,
}

impl<'a, 'stm> Session<'a, 'stm> {
    /// Renders one reply in the connection's current framing, counting
    /// error replies.
    fn emit(&mut self, reply: &Reply, out: &mut Vec<u8>) {
        if matches!(reply, Reply::Err(..)) {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        match self.conn.proto {
            ProtoVersion::V1 => {
                out.extend_from_slice(render_reply(reply).as_bytes());
                out.push(b'\n');
            }
            ProtoVersion::V2 => render_reply_v2(out, reply),
        }
    }

    /// Notes that the burst's replies depend on `seq` being durable.
    fn require_durable(&mut self, seq: Option<u64>) {
        if let (Some(durable), Some(seq)) = (self.durable, seq) {
            if durable.sync_replies {
                self.flush_barrier = Some(self.flush_barrier.unwrap_or(0).max(seq));
            }
        }
    }

    /// Takes a point-in-time snapshot through `atomically_logged` (the
    /// commit sequence number marks the consistent cut).
    fn take_snapshot(&mut self) -> Reply {
        let Some(durable) = self.durable else {
            return Reply::err(
                ErrorCode::Wal,
                "durability disabled (start the server with --wal-dir)",
            );
        };
        if !durable.wal.begin_snapshot() {
            return Reply::err(ErrorCode::Wal, "snapshot already in progress");
        }
        let store = self.store;
        let (result, report) = self.ctx.atomically_logged(|tx| store.dump(tx));
        match result {
            Ok(pairs) => {
                let seq = report.commit_seq.unwrap_or(0);
                match durable.wal.write_snapshot(seq, &pairs) {
                    Ok(_) => Reply::Snapshot(seq, pairs.len()),
                    Err(err) => Reply::err(ErrorCode::Wal, format!("snapshot write failed: {err}")),
                }
            }
            Err(err) => {
                durable.wal.abandon_snapshot();
                Reply::err(ErrorCode::Wal, format!("snapshot transaction failed: {err}"))
            }
        }
    }

    /// Auto-snapshot when the configured record budget is exhausted.
    fn maybe_auto_snapshot(&mut self) {
        let Some(durable) = self.durable else { return };
        if durable.snapshot_every == 0
            || durable.wal.records_since_snapshot() < durable.snapshot_every
        {
            return;
        }
        if let Reply::Err(_, message) = self.take_snapshot() {
            // "already in progress" just means another worker got there
            // first; anything else is worth a trace.
            if !message.contains("in progress") {
                eprintln!("stm-kv: auto-snapshot failed: {message}");
            }
        }
    }

    /// Processes one v1 request line, appending its reply to `out`.
    fn handle_line(&mut self, line: &str, out: &mut Vec<u8>) {
        match parse_request(line) {
            Err(error) => {
                if !matches!(self.conn.batch, Batch::None) {
                    self.conn.batch = Batch::Poisoned;
                }
                self.emit(&Reply::Err(error.code, error.message), out);
            }
            Ok(request) => self.handle_request(request, out),
        }
    }

    /// Processes one decoded v2 request frame, appending its reply to `out`.
    fn handle_frame(&mut self, frame: crate::proto::Frame, out: &mut Vec<u8>) {
        match parse_request_v2(frame) {
            Err(error) => {
                if !matches!(self.conn.batch, Batch::None) {
                    self.conn.batch = Batch::Poisoned;
                }
                self.emit(&Reply::Err(error.code, error.message), out);
            }
            Ok(request) => self.handle_request(request, out),
        }
    }

    /// Dispatches one parsed request — the framing-independent core.
    fn handle_request(&mut self, request: Request, out: &mut Vec<u8>) {
        let in_batch = !matches!(self.conn.batch, Batch::None);
        match request {
            Request::Quit => {
                self.emit(&Reply::Bye, out);
                self.conn.quit = true;
            }
            Request::Hello(version) if !in_batch => match version {
                1 => {
                    // The reply goes out in the *current* framing; the
                    // switch covers everything after it.
                    self.emit(&Reply::Hello(1), out);
                    self.conn.proto = ProtoVersion::V1;
                }
                2 => {
                    self.emit(&Reply::Hello(2), out);
                    self.conn.proto = ProtoVersion::V2;
                }
                other => {
                    self.emit(
                        &Reply::err(
                            ErrorCode::Proto,
                            format!(
                                "unsupported protocol version {other} \
                                 (supported: 1..={MAX_PROTOCOL_VERSION})"
                            ),
                        ),
                        out,
                    );
                }
            },
            Request::Ping if !in_batch => self.emit(&Reply::Pong, out),
            Request::Stats if !in_batch => {
                let payload = stats_payload(self.ctx.stm(), self.counters, self.store);
                self.emit(&Reply::Stats(payload), out);
            }
            Request::WalStats if !in_batch => match self.durable {
                Some(durable) => {
                    let payload = walstats_payload(durable);
                    self.emit(&Reply::WalStats(payload), out);
                }
                None => {
                    self.emit(
                        &Reply::err(
                            ErrorCode::Wal,
                            "durability disabled (start the server with --wal-dir)",
                        ),
                        out,
                    );
                }
            },
            Request::Snapshot if !in_batch => {
                let reply = self.take_snapshot();
                self.emit(&reply, out);
            }
            Request::Metrics if !in_batch => {
                let payload = metrics_payload(
                    self.ctx.stm(),
                    self.counters,
                    self.store,
                    self.durable,
                    self.telemetry,
                );
                self.emit(&Reply::Metrics(payload), out);
            }
            Request::SlowLog(n) if !in_batch => {
                let entries = self.telemetry.slowlog.entries(n as usize);
                self.emit(&Reply::SlowLog(entries), out);
            }
            Request::Begin if !in_batch => {
                self.conn.batch = Batch::Open(Vec::new());
                self.emit(&Reply::Ok, out);
            }
            Request::Hello(_)
            | Request::Begin
            | Request::Ping
            | Request::Stats
            | Request::Snapshot
            | Request::WalStats
            | Request::Metrics
            | Request::SlowLog(_) => {
                self.conn.batch = Batch::Poisoned;
                self.emit(
                    &Reply::err(ErrorCode::Batch, "command not allowed inside BEGIN/EXEC batch"),
                    out,
                );
            }
            Request::Exec => self.handle_exec(out),
            data_op => self.handle_data_op(data_op, out),
        }
    }

    fn handle_exec(&mut self, out: &mut Vec<u8>) {
        match std::mem::replace(&mut self.conn.batch, Batch::None) {
            Batch::None => {
                self.emit(&Reply::err(ErrorCode::Batch, "EXEC without BEGIN"), out);
            }
            Batch::Poisoned => {
                self.emit(
                    &Reply::err(
                        ErrorCode::Batch,
                        "batch aborted by an earlier error; nothing executed",
                    ),
                    out,
                );
            }
            Batch::Open(ops) => {
                self.counters.batches.fetch_add(1, Ordering::Relaxed);
                let store = self.store;
                let log = self.durable.is_some();
                // A type error anywhere in the batch aborts the whole
                // transaction (explicit abort — no retry, nothing commits):
                // all-or-nothing is the batch's contract, and a half-applied
                // transfer would un-conserve the keyspace.
                let mut type_failure: Option<Reply> = None;
                let started = Instant::now();
                let (result, report) = self.ctx.atomically_traced(|tx| {
                    let mut replies = Vec::with_capacity(ops.len());
                    for op in &ops {
                        let reply = apply(store, tx, op, log)?;
                        if matches!(reply, Reply::Err(ErrorCode::Type, _)) {
                            type_failure = Some(reply);
                            return tx.abort();
                        }
                        replies.push(reply);
                    }
                    Ok(replies)
                });
                let txn_us = elapsed_us(started);
                self.counters.retries.fetch_add(report.aborts, Ordering::Relaxed);
                match result {
                    Ok(replies) => {
                        self.require_durable(report.commit_seq);
                        self.emit(&Reply::Exec(replies), out);
                        self.maybe_auto_snapshot();
                    }
                    Err(_) if type_failure.is_some() => {
                        let Some(Reply::Err(code, message)) = type_failure else {
                            unreachable!("type_failure holds an error reply");
                        };
                        self.emit(
                            &Reply::Err(code, format!("nothing executed: {message}")),
                            out,
                        );
                    }
                    Err(err) => {
                        self.emit(
                            &Reply::err(ErrorCode::Txn, format!("batch failed: {err}")),
                            out,
                        );
                    }
                }
                self.telemetry
                    .observe_op(OP_EXEC, &report, txn_us, elapsed_us(started));
            }
        }
    }

    fn handle_data_op(&mut self, data_op: Request, out: &mut Vec<u8>) {
        match &mut self.conn.batch {
            Batch::Open(ops) => {
                ops.push(data_op);
                self.emit(&Reply::Queued, out);
            }
            Batch::Poisoned => {
                // Swallow without executing: the client already pipelined
                // this op as part of the failed batch.
                self.emit(
                    &Reply::err(ErrorCode::Batch, "batch aborted by an earlier error"),
                    out,
                );
            }
            Batch::None => {
                self.counters.requests.fetch_add(1, Ordering::Relaxed);
                let store = self.store;
                let log = self.durable.is_some();
                let started = Instant::now();
                let (result, report) =
                    self.ctx.atomically_traced(|tx| apply(store, tx, &data_op, log));
                let txn_us = elapsed_us(started);
                self.counters.retries.fetch_add(report.aborts, Ordering::Relaxed);
                match result {
                    Ok(reply) => {
                        self.require_durable(report.commit_seq);
                        self.emit(&reply, out);
                        self.maybe_auto_snapshot();
                    }
                    Err(err) => {
                        self.emit(
                            &Reply::err(ErrorCode::Txn, format!("transaction failed: {err}")),
                            out,
                        );
                    }
                }
                self.telemetry
                    .observe_op(op_index(&data_op), &report, txn_us, elapsed_us(started));
            }
        }
    }
}

/// The framing-aware request-processing core shared by both serve modes:
/// parses and executes every complete request in `inbuf` (partial trailing
/// input stays buffered), appending the replies to `out` in order. The
/// framing is re-checked every iteration — a `HELLO` inside the burst
/// switches how the rest of the burst is parsed.
///
/// Returns the burst's durability barrier: the commit sequence number the
/// caller must [`Wal::wait_durable`] on before flushing `out` (synchronous
/// fsync policies only). A barrier wait returning `false` means the log
/// failed — the caller must close without acknowledging rather than send
/// replies the contract says are on disk.
#[allow(clippy::too_many_arguments)] // one slot per serving-layer concern; a struct would just rename the list
pub(crate) fn process_buffered(
    conn: &mut ConnState,
    ctx: &mut ThreadCtx<'_>,
    store: &KvStore,
    counters: &ServerCounters,
    telemetry: &Telemetry,
    durable: Option<&Durable>,
    inbuf: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> Option<u64> {
    let mut session = Session {
        ctx,
        store,
        counters,
        telemetry,
        durable,
        conn,
        flush_barrier: None,
    };
    let mut consumed = 0usize;
    while !session.conn.quit {
        match session.conn.proto {
            ProtoVersion::V1 => {
                let Some(nl) = inbuf[consumed..].iter().position(|&b| b == b'\n') else {
                    break;
                };
                let line = String::from_utf8_lossy(&inbuf[consumed..consumed + nl]).into_owned();
                consumed += nl + 1;
                session.handle_line(&line, out);
            }
            ProtoVersion::V2 => match decode_frame(&inbuf[consumed..]) {
                Ok((frame, used)) => {
                    consumed += used;
                    session.handle_frame(frame, out);
                }
                Err(FrameError::Incomplete) => break,
                Err(FrameError::Malformed(message)) => {
                    // A length-prefixed stream cannot resynchronise past
                    // garbage: report once and close.
                    session.emit(
                        &Reply::err(ErrorCode::Proto, format!("malformed frame: {message}")),
                        out,
                    );
                    session.conn.quit = true;
                }
            },
        }
    }
    inbuf.drain(..consumed);
    session.flush_barrier
}

/// Decrements `conns_open` when a served connection ends, however it ends.
pub(crate) struct OpenConnGuard<'a>(pub(crate) &'a ServerCounters);

impl Drop for OpenConnGuard<'_> {
    fn drop(&mut self) {
        self.0.conns_open.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Serves one connection until the peer quits, disconnects, or the server
/// shuts down. Pipelined: every complete request already buffered is
/// executed before the replies are written back in one flush. The framing
/// is per-connection state: v1 lines until a `HELLO 2`, v2 frames after.
fn serve_connection(
    stream: TcpStream,
    ctx: &mut ThreadCtx<'_>,
    store: &KvStore,
    counters: &ServerCounters,
    telemetry: &Telemetry,
    durable: Option<&Durable>,
    stop: &AtomicBool,
) {
    counters.conns_open.fetch_add(1, Ordering::Relaxed);
    let _open = OpenConnGuard(counters);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(mut reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut inbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let mut out: Vec<u8> = Vec::new();
    let mut conn = ConnState::new();

    // Graceful drain: on shutdown, everything the client already sent is
    // read off the socket (until it runs dry), executed, and its replies
    // flushed before the connection closes — an in-flight pipelined burst
    // is never dropped half-acknowledged.
    let drain_and_close = |conn: &mut ConnState,
                               ctx: &mut ThreadCtx<'_>,
                               reader: &mut TcpStream,
                               writer: &mut TcpStream,
                               inbuf: &mut Vec<u8>,
                               out: &mut Vec<u8>| {
        let _ = reader.set_read_timeout(Some(Duration::from_millis(5)));
        let mut chunk = [0u8; 4096];
        loop {
            match reader.read(&mut chunk) {
                Ok(n) if n > 0 => inbuf.extend_from_slice(&chunk[..n]),
                _ => break,
            }
        }
        out.clear();
        let barrier = process_buffered(conn, ctx, store, counters, telemetry, durable, inbuf, out);
        if let (Some(durable), Some(barrier)) = (durable, barrier) {
            if !durable.wal.wait_durable(barrier) {
                return;
            }
        }
        if !out.is_empty() {
            let _ = writer.write_all(out);
            let _ = writer.flush();
        }
    };

    loop {
        match reader.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => inbuf.extend_from_slice(&chunk[..n]),
            Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::Relaxed) {
                    drain_and_close(&mut conn, ctx, &mut reader, &mut writer, &mut inbuf, &mut out);
                    return;
                }
                continue;
            }
            Err(_) => return,
        }

        // Execute every complete request buffered so far; replies accumulate
        // and go out in one write. Partial trailing input stays buffered.
        out.clear();
        let barrier = process_buffered(
            &mut conn,
            ctx,
            store,
            counters,
            telemetry,
            durable,
            &mut inbuf,
            &mut out,
        );
        if out.is_empty() {
            if conn.quit() {
                return;
            }
            continue;
        }
        // Group commit: one durability wait covers the whole burst. A
        // `false` here means the log failed (the server joins workers
        // before stopping its own WAL, so a shutdown cannot race this
        // wait): the burst's writes committed in memory but their
        // durability cannot be promised — close without acknowledging
        // rather than send replies the contract says are on disk.
        if let (Some(durable), Some(barrier)) = (durable, barrier) {
            if !durable.wal.wait_durable(barrier) {
                return;
            }
        }
        if writer.write_all(&out).is_err() || writer.flush().is_err() {
            return;
        }
        if conn.quit() {
            return;
        }
        // Bounded shutdown even against a client that never stops sending:
        // the flag is also honoured between fully-served bursts, not only
        // on idle reads. The drain pass picks up anything the client
        // pipelined behind the burst just served.
        if stop.load(Ordering::Relaxed) {
            drain_and_close(&mut conn, ctx, &mut reader, &mut writer, &mut inbuf, &mut out);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{parse_reply_v2, render_request_v2};
    use crate::Value;
    use std::io::{BufRead, BufReader};

    #[test]
    fn server_starts_and_shuts_down_cleanly() {
        let mut server = KvServer::start(ServerConfig {
            capacity: 16,
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        assert_eq!(server.manager(), ManagerKind::Greedy);
        assert!(server.addr().port() != 0);
        assert!(server.wal().is_none());
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn shutdown_returns_while_a_client_keeps_sending() {
        let mut server = KvServer::start(ServerConfig {
            capacity: 16,
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.addr();
        let done = Arc::new(AtomicBool::new(false));
        let hammer = {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                // A closed-loop client that never goes idle: the worker's
                // reads keep returning data, so shutdown must be honoured
                // between bursts, not only on read timeouts.
                let Ok(stream) = TcpStream::connect(addr) else { return };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut reply = String::new();
                while !done.load(Ordering::Relaxed) {
                    if writer.write_all(b"PING\n").is_err() {
                        break;
                    }
                    reply.clear();
                    if reader.read_line(&mut reply).unwrap_or(0) == 0 {
                        break;
                    }
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        server.shutdown(); // must join every worker despite the busy client
        done.store(true, Ordering::Relaxed);
        hammer.join().unwrap();
    }

    #[test]
    fn raw_socket_session_speaks_the_v1_protocol() {
        let server = KvServer::start(ServerConfig {
            capacity: 32,
            shards: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut say = |cmd: &str, reader: &mut BufReader<TcpStream>| -> String {
            writer.write_all(format!("{cmd}\n").as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };
        assert_eq!(say("PING", &mut reader), "PONG");
        assert_eq!(say("PUT 3 30", &mut reader), "OK");
        assert_eq!(say("GET 3", &mut reader), "VALUE 30");
        assert_eq!(say("GET 4", &mut reader), "NIL");
        assert_eq!(say("ADD 4 5", &mut reader), "VALUE 5");
        assert_eq!(say("RANGE 0 31", &mut reader), "RANGE 2 3=30 4=5");
        assert_eq!(say("SUM 0 31", &mut reader), "SUM 35 2");
        assert_eq!(say("DEL 3", &mut reader), "OK 1");
        assert_eq!(say("DEL 3", &mut reader), "OK 0");
        // The keyspace is dynamic: far-out keys are legal, not errors.
        assert_eq!(say("PUT 99999999 7", &mut reader), "OK");
        assert_eq!(say("GET 99999999", &mut reader), "VALUE 7");
        assert_eq!(say("DEL 99999999", &mut reader), "OK 1");
        assert!(say("NOPE", &mut reader).starts_with("ERR unknown command"));
        // An unsupported HELLO version leaves the connection in v1.
        assert!(say("HELLO 9", &mut reader).starts_with("ERR unsupported protocol version"));
        assert_eq!(say("PING", &mut reader), "PONG");
        // Durability commands on a volatile server fail politely.
        assert!(say("SNAPSHOT", &mut reader).starts_with("ERR durability disabled"));
        assert!(say("WALSTATS", &mut reader).starts_with("ERR durability disabled"));
        // A batch: two queued ops executed atomically.
        assert_eq!(say("BEGIN", &mut reader), "OK");
        assert_eq!(say("ADD 4 -5", &mut reader), "QUEUED");
        assert_eq!(say("ADD 5 5", &mut reader), "QUEUED");
        assert_eq!(say("EXEC", &mut reader), "EXEC 2");
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        assert_eq!(l.trim_end(), "VALUE 0");
        l.clear();
        reader.read_line(&mut l).unwrap();
        assert_eq!(l.trim_end(), "VALUE 5");
        assert_eq!(say("EXEC", &mut reader), "ERR EXEC without BEGIN");
        let stats = say("STATS", &mut reader);
        assert!(stats.starts_with("STATS commits="), "got '{stats}'");
        assert!(stats.contains(" cells="), "STATS must expose cell growth: '{stats}'");
        assert!(
            stats.contains(" cells_freed="),
            "STATS must expose cell reclamation: '{stats}'"
        );
        assert!(stats.contains(" limbo="), "STATS must expose GC limbo depth: '{stats}'");
        assert!(stats.contains(" overflow="), "STATS must expose overflow shards: '{stats}'");
        assert_eq!(say("QUIT", &mut reader), "BYE");
    }

    #[test]
    fn hello_switches_the_connection_to_v2_frames() {
        let server = KvServer::start(ServerConfig {
            capacity: 32,
            shards: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // The handshake happens in v1...
        writer.write_all(b"HELLO 2\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "HELLO 2");
        // ...and everything after it is framed. Pipeline a typed PUT (value
        // containing newlines and NULs), a GET and a QUIT in one write.
        let value = Value::Str("v2 \n payload \0 ✓".to_string());
        let mut burst = render_request_v2(&Request::Put(5, value.clone()));
        burst.extend_from_slice(&render_request_v2(&Request::Get(5)));
        burst.extend_from_slice(&render_request_v2(&Request::Quit));
        writer.write_all(&burst).unwrap();
        let mut replies = Vec::new();
        reader.read_to_end(&mut replies).unwrap();
        let (frame, used) = decode_frame(&replies).unwrap();
        assert_eq!(parse_reply_v2(frame).unwrap(), Reply::Ok);
        let (frame, used2) = decode_frame(&replies[used..]).unwrap();
        assert_eq!(parse_reply_v2(frame).unwrap(), Reply::Value(value));
        let (frame, _) = decode_frame(&replies[used + used2..]).unwrap();
        assert_eq!(parse_reply_v2(frame).unwrap(), Reply::Bye);
    }

    #[test]
    fn malformed_v2_frame_reports_and_closes() {
        let server = KvServer::start(ServerConfig {
            capacity: 16,
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"HELLO 2\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        writer.write_all(b"!garbage\n").unwrap();
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        let (frame, _) = decode_frame(&rest).unwrap();
        match parse_reply_v2(frame).unwrap() {
            Reply::Err(ErrorCode::Proto, message) => {
                assert!(message.contains("malformed frame"), "{message}")
            }
            other => panic!("expected PROTO error, got {other:?}"),
        }
    }

    #[test]
    fn type_errors_are_coded_and_do_not_abort_the_connection() {
        let server = KvServer::start(ServerConfig {
            capacity: 32,
            shards: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"HELLO 2\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let read_reply = |reader: &mut BufReader<TcpStream>| -> Reply {
            // Frames are short here; read byte-wise via fill_buf loop.
            let mut buf = Vec::new();
            loop {
                match decode_frame(&buf) {
                    Ok((frame, _)) => return parse_reply_v2(frame).unwrap(),
                    Err(FrameError::Incomplete) => {
                        let chunk = reader.fill_buf().unwrap();
                        assert!(!chunk.is_empty(), "server closed mid-frame");
                        let take = chunk.len();
                        buf.extend_from_slice(chunk);
                        reader.consume(take);
                    }
                    Err(FrameError::Malformed(m)) => panic!("malformed reply: {m}"),
                }
            }
        };
        writer
            .write_all(&render_request_v2(&Request::Put(1, Value::Str("text".into()))))
            .unwrap();
        assert_eq!(read_reply(&mut reader), Reply::Ok);
        writer.write_all(&render_request_v2(&Request::Add(1, 5))).unwrap();
        match read_reply(&mut reader) {
            Reply::Err(ErrorCode::Type, message) => {
                assert!(message.contains("str"), "{message}")
            }
            other => panic!("expected TYPE error, got {other:?}"),
        }
        writer.write_all(&render_request_v2(&Request::Sum(0, 10))).unwrap();
        assert!(matches!(read_reply(&mut reader), Reply::Err(ErrorCode::Type, _)));
        // The connection survives; int arithmetic still works.
        writer.write_all(&render_request_v2(&Request::Add(2, 5))).unwrap();
        assert_eq!(read_reply(&mut reader), Reply::Value(Value::Int(5)));
        writer.write_all(&render_request_v2(&Request::Quit)).unwrap();
        assert_eq!(read_reply(&mut reader), Reply::Bye);
    }

    #[test]
    fn v1_get_of_a_typed_value_degrades_to_an_error_line() {
        let server = KvServer::start(ServerConfig {
            capacity: 16,
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        // Store a string through v2...
        {
            let stream = TcpStream::connect(server.addr()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            writer.write_all(b"HELLO 2\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut burst = render_request_v2(&Request::Put(7, Value::Str("s\ns".into())));
            burst.extend_from_slice(&render_request_v2(&Request::Quit));
            writer.write_all(&burst).unwrap();
            let mut rest = Vec::new();
            reader.read_to_end(&mut rest).unwrap();
        }
        // ...and observe the polite v1 degradation.
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut say = |cmd: &str, reader: &mut BufReader<TcpStream>| -> String {
            writer.write_all(format!("{cmd}\n").as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };
        let got = say("GET 7", &mut reader);
        assert!(got.starts_with("ERR value is str"), "{got}");
        assert!(got.contains("HELLO 2"), "{got}");
        assert_eq!(say("RANGE 0 10", &mut reader), "RANGE 1 7=<str>");
        assert_eq!(say("QUIT", &mut reader), "BYE");
    }

    #[test]
    fn poisoned_batch_executes_nothing_and_keeps_framing() {
        let server = KvServer::start(ServerConfig {
            capacity: 32,
            shards: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut say = |cmd: &str, reader: &mut BufReader<TcpStream>| -> String {
            writer.write_all(format!("{cmd}\n").as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };
        assert_eq!(say("PUT 3 30", &mut reader), "OK");
        assert_eq!(say("BEGIN", &mut reader), "OK");
        assert_eq!(say("ADD 3 10", &mut reader), "QUEUED");
        // A non-data command poisons the batch...
        assert!(say("PING", &mut reader).starts_with("ERR command not allowed"));
        // ...so the already-pipelined tail is swallowed, not executed.
        assert!(say("ADD 3 100", &mut reader).starts_with("ERR batch aborted"));
        assert!(say("EXEC", &mut reader).starts_with("ERR batch aborted"));
        // All-or-nothing: key 3 is untouched, framing survives.
        assert_eq!(say("GET 3", &mut reader), "VALUE 30");
        assert_eq!(say("PING", &mut reader), "PONG");
        assert_eq!(say("BEGIN", &mut reader), "OK");
        assert_eq!(say("ADD 3 1", &mut reader), "QUEUED");
        assert_eq!(say("EXEC", &mut reader), "EXEC 1");
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        assert_eq!(l.trim_end(), "VALUE 31");
        assert_eq!(say("QUIT", &mut reader), "BYE");
    }

    #[test]
    fn pipelined_burst_gets_every_reply_in_order() {
        let server = KvServer::start(ServerConfig {
            capacity: 32,
            shards: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // One write carrying many requests — the pipelined path.
        let mut burst = String::new();
        for key in 0..50i64 {
            burst.push_str(&format!("PUT {key} {}\n", key * 2));
        }
        burst.push_str("SUM 0 49\nPING\n");
        writer.write_all(burst.as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut replies = Vec::new();
        for _ in 0..52 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            replies.push(line.trim_end().to_string());
        }
        assert!(replies[..50].iter().all(|r| r == "OK"), "{replies:?}");
        assert_eq!(replies[50], format!("SUM {} 50", (0..50i64).map(|k| k * 2).sum::<i64>()));
        assert_eq!(replies[51], "PONG");
    }

    #[test]
    fn hello_and_v2_frames_pipeline_in_one_burst() {
        let server = KvServer::start(ServerConfig {
            capacity: 16,
            shards: 2,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        // The handshake line and v2 frames in ONE write: the server must
        // re-frame mid-burst.
        let mut burst = b"HELLO 2\n".to_vec();
        burst.extend_from_slice(&render_request_v2(&Request::Put(
            1,
            Value::Bytes(vec![0, 10, 13, 255]),
        )));
        burst.extend_from_slice(&render_request_v2(&Request::Get(1)));
        burst.extend_from_slice(&render_request_v2(&Request::Quit));
        writer.write_all(&burst).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "HELLO 2");
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        let (frame, used) = decode_frame(&rest).unwrap();
        assert_eq!(parse_reply_v2(frame).unwrap(), Reply::Ok);
        let (frame, used2) = decode_frame(&rest[used..]).unwrap();
        assert_eq!(
            parse_reply_v2(frame).unwrap(),
            Reply::Value(Value::Bytes(vec![0, 10, 13, 255]))
        );
        let (frame, _) = decode_frame(&rest[used + used2..]).unwrap();
        assert_eq!(parse_reply_v2(frame).unwrap(), Reply::Bye);
    }

    #[test]
    fn v2_exec_reply_nests_per_op_replies() {
        let server = KvServer::start(ServerConfig {
            capacity: 32,
            shards: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut burst = b"HELLO 2\n".to_vec();
        burst.extend_from_slice(&render_request_v2(&Request::Begin));
        burst.extend_from_slice(&render_request_v2(&Request::Put(1, Value::Str("a".into()))));
        burst.extend_from_slice(&render_request_v2(&Request::Add(2, 7)));
        burst.extend_from_slice(&render_request_v2(&Request::Get(1)));
        burst.extend_from_slice(&render_request_v2(&Request::Exec));
        burst.extend_from_slice(&render_request_v2(&Request::Quit));
        writer.write_all(&burst).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "HELLO 2");
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        let mut at = 0usize;
        let mut next = || -> Reply {
            let (frame, used) = decode_frame(&rest[at..]).unwrap();
            at += used;
            parse_reply_v2(frame).unwrap()
        };
        assert_eq!(next(), Reply::Ok); // BEGIN
        assert_eq!(next(), Reply::Queued);
        assert_eq!(next(), Reply::Queued);
        assert_eq!(next(), Reply::Queued);
        assert_eq!(
            next(),
            Reply::Exec(vec![
                Reply::Ok,
                Reply::Value(Value::Int(7)),
                Reply::Value(Value::Str("a".into())),
            ])
        );
        assert_eq!(next(), Reply::Bye);
    }

    fn temp_wal_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "stm-kv-server-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_server_recovers_its_keyspace_after_restart() {
        let dir = temp_wal_dir("recover");
        let config = ServerConfig {
            capacity: 16,
            shards: 2,
            workers: 2,
            wal_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        {
            let mut server = KvServer::start(config.clone()).unwrap();
            let stream = TcpStream::connect(server.addr()).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let mut say = |cmd: &str, reader: &mut BufReader<TcpStream>| -> String {
                writer.write_all(format!("{cmd}\n").as_bytes()).unwrap();
                let mut reply = String::new();
                reader.read_line(&mut reply).unwrap();
                reply.trim_end().to_string()
            };
            assert_eq!(say("PUT 1 100", &mut reader), "OK");
            assert_eq!(say("PUT 2 200", &mut reader), "OK");
            assert_eq!(say("DEL 2", &mut reader), "OK 1");
            assert_eq!(say("ADD 3 33", &mut reader), "VALUE 33");
            let walstats = say("WALSTATS", &mut reader);
            assert!(walstats.starts_with("WALSTATS policy=every"), "{walstats}");
            assert!(walstats.contains("records=4"), "{walstats}");
            let snap = say("SNAPSHOT", &mut reader);
            assert!(snap.starts_with("SNAPSHOT "), "{snap}");
            assert_eq!(say("PUT 4 400", &mut reader), "OK");
            assert_eq!(say("QUIT", &mut reader), "BYE");
            server.shutdown();
        }
        // Restart on the same directory: snapshot + tail replay.
        let server = KvServer::start(config).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut say = |cmd: &str, reader: &mut BufReader<TcpStream>| -> String {
            writer.write_all(format!("{cmd}\n").as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };
        assert_eq!(say("GET 1", &mut reader), "VALUE 100");
        assert_eq!(say("GET 2", &mut reader), "NIL", "deleted key must stay deleted");
        assert_eq!(say("GET 3", &mut reader), "VALUE 33");
        assert_eq!(say("GET 4", &mut reader), "VALUE 400", "post-snapshot tail replayed");
        assert_eq!(say("SUM 0 15", &mut reader), "SUM 533 3");
        assert_eq!(say("QUIT", &mut reader), "BYE");
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_snapshot_fires_after_the_configured_record_budget() {
        let dir = temp_wal_dir("autosnap");
        let mut server = KvServer::start(ServerConfig {
            capacity: 16,
            shards: 2,
            workers: 2,
            wal_dir: Some(dir.clone()),
            snapshot_every: 10,
            ..ServerConfig::default()
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut say = |cmd: &str, reader: &mut BufReader<TcpStream>| -> String {
            writer.write_all(format!("{cmd}\n").as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply.trim_end().to_string()
        };
        for i in 0..25i64 {
            assert_eq!(say(&format!("PUT {} {}", i % 8, i), &mut reader), "OK");
        }
        let walstats = say("WALSTATS", &mut reader);
        let snapshots: u64 = walstats
            .split_whitespace()
            .find_map(|pair| pair.strip_prefix("snapshots=").and_then(|v| v.parse().ok()))
            .unwrap_or_else(|| panic!("unparseable WALSTATS: {walstats}"));
        assert!(snapshots >= 2, "25 records / snapshot-every-10: {walstats}");
        assert_eq!(say("QUIT", &mut reader), "BYE");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
