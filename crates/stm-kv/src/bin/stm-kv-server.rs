//! `stm-kv-server` — run a transactional key-value server from the
//! command line.
//!
//! ```text
//! cargo run --release -p stm-kv --bin stm-kv-server -- \
//!     --addr 127.0.0.1:7878 --manager greedy --capacity 65536 --shards 16
//! ```
//!
//! Talk to it with any line client:
//!
//! ```text
//! $ nc 127.0.0.1 7878
//! PUT 1 100
//! OK
//! BEGIN
//! OK
//! ADD 1 -25
//! QUEUED
//! ADD 2 25
//! QUEUED
//! EXEC
//! EXEC 2
//! VALUE 75
//! VALUE 25
//! ```

use std::time::Duration;

use stm_cm::ManagerKind;
use stm_kv::{KvServer, ServeMode, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: stm-kv-server [--addr HOST:PORT] [--manager NAME] \
         [--capacity N] [--shards N] [--workers N] \
         [--serve-mode threads|events] [--event-shards N] [--idle-timeout SECS] \
         [--wal-dir PATH] [--fsync every|n=COUNT|ms=MILLIS] [--snapshot-every N]\n\
         managers: {}\n\
         --serve-mode picks the connection layer: 'threads' (default) serves \
         one connection per pool worker; 'events' multiplexes non-blocking \
         connections over readiness shards (--event-shards, default one per \
         core) and reaps connections idle longer than --idle-timeout seconds \
         (0 = never, the default);\n\
         --wal-dir enables durability: the keyspace is recovered from PATH on \
         start and every mutating request is logged; --fsync picks the group-\
         commit policy (default every); --snapshot-every takes a snapshot per \
         N logged records (default 0 = only on SNAPSHOT)",
        stm_cm::all_manager_names().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else { usage() };
        i += 1;
        match flag {
            "--addr" => config.addr = value.clone(),
            "--manager" => match value.parse::<ManagerKind>() {
                Ok(kind) => config.manager = kind,
                Err(err) => {
                    eprintln!("{err}");
                    usage();
                }
            },
            "--capacity" => config.capacity = value.parse().unwrap_or_else(|_| usage()),
            "--shards" => config.shards = value.parse().unwrap_or_else(|_| usage()),
            "--workers" => config.workers = value.parse().unwrap_or_else(|_| usage()),
            "--serve-mode" => {
                config.serve_mode = ServeMode::parse(value).unwrap_or_else(|| usage());
            }
            "--event-shards" => config.event_shards = value.parse().unwrap_or_else(|_| usage()),
            "--idle-timeout" => {
                let secs: f64 = value.parse().unwrap_or_else(|_| usage());
                if !secs.is_finite() || secs < 0.0 {
                    usage();
                }
                config.idle_timeout = Duration::from_secs_f64(secs);
            }
            "--wal-dir" => config.wal_dir = Some(value.into()),
            "--fsync" => match value.parse() {
                Ok(policy) => config.fsync = policy,
                Err(err) => {
                    eprintln!("{err}");
                    usage();
                }
            },
            "--snapshot-every" => {
                config.snapshot_every = value.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    let server = match KvServer::start(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("failed to start: {err}");
            std::process::exit(1);
        }
    };
    match server.wal() {
        Some(wal) => println!(
            "stm-kv listening on {} (manager: {}, serve: {}, wal: {} fsync={})",
            server.addr(),
            server.manager().name(),
            server.serve_mode().label(),
            wal.dir().display(),
            wal.policy()
        ),
        None => println!(
            "stm-kv listening on {} (manager: {}, serve: {}, volatile)",
            server.addr(),
            server.manager().name(),
            server.serve_mode().label()
        ),
    }
    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
