//! `stm-kv-server` — run a transactional key-value server from the
//! command line.
//!
//! ```text
//! cargo run --release -p stm-kv --bin stm-kv-server -- \
//!     --addr 127.0.0.1:7878 --manager greedy --capacity 65536 --shards 16
//! ```
//!
//! Talk to it with any line client:
//!
//! ```text
//! $ nc 127.0.0.1 7878
//! PUT 1 100
//! OK
//! BEGIN
//! OK
//! ADD 1 -25
//! QUEUED
//! ADD 2 25
//! QUEUED
//! EXEC
//! EXEC 2
//! VALUE 75
//! VALUE 25
//! ```

use std::time::Duration;

use stm_cm::ManagerKind;
use stm_kv::{KvServer, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: stm-kv-server [--addr HOST:PORT] [--manager NAME] \
         [--capacity N] [--shards N] [--workers N] \
         [--wal-dir PATH] [--fsync every|n=COUNT|ms=MILLIS] [--snapshot-every N]\n\
         managers: {}\n\
         --wal-dir enables durability: the keyspace is recovered from PATH on \
         start and every mutating request is logged; --fsync picks the group-\
         commit policy (default every); --snapshot-every takes a snapshot per \
         N logged records (default 0 = only on SNAPSHOT)",
        stm_cm::all_manager_names().join(", ")
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else { usage() };
        i += 1;
        match flag {
            "--addr" => config.addr = value.clone(),
            "--manager" => match value.parse::<ManagerKind>() {
                Ok(kind) => config.manager = kind,
                Err(err) => {
                    eprintln!("{err}");
                    usage();
                }
            },
            "--capacity" => config.capacity = value.parse().unwrap_or_else(|_| usage()),
            "--shards" => config.shards = value.parse().unwrap_or_else(|_| usage()),
            "--workers" => config.workers = value.parse().unwrap_or_else(|_| usage()),
            "--wal-dir" => config.wal_dir = Some(value.into()),
            "--fsync" => match value.parse() {
                Ok(policy) => config.fsync = policy,
                Err(err) => {
                    eprintln!("{err}");
                    usage();
                }
            },
            "--snapshot-every" => {
                config.snapshot_every = value.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    let server = match KvServer::start(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("failed to start: {err}");
            std::process::exit(1);
        }
    };
    match server.wal() {
        Some(wal) => println!(
            "stm-kv listening on {} (manager: {}, wal: {} fsync={})",
            server.addr(),
            server.manager().name(),
            wal.dir().display(),
            wal.policy()
        ),
        None => println!(
            "stm-kv listening on {} (manager: {}, volatile)",
            server.addr(),
            server.manager().name()
        ),
    }
    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
