//! The transactional keyspace behind the server.
//!
//! A [`KvStore`] is a **dynamic** map from arbitrary `i64` keys to typed
//! [`Value`]s (`Int` / `Str` / `Bytes`). Presence is tracked by a sharded
//! red-black-tree index ([`ShardedTxSet`]); each key's value lives in its
//! own `TVar` cell. The split matters for contention: a `PUT`/`ADD`
//! conflicts with another transaction only when both touch the same key's
//! value cell or the same index path inside one shard — transactions on
//! different shards are disjoint by construction.
//!
//! Value cells live in two tiers. Keys inside the pre-allocated range
//! (`0..prealloc`, the server's `--capacity` warm-up hint) resolve through
//! a plain `Vec` — the same lock-free hot path the old fixed-capacity
//! design had; those cells are permanent and a delete simply clears them
//! back to [`CellState::Vacant`]. Keys outside it are materialised on first
//! touch: each shard owns a `parking_lot::Mutex<HashMap<key, TVar>>`
//! overflow table, and cell lookup does a brief get-or-insert under that
//! leaf lock. The lock guards only cell *identity* (two racing transactions
//! must obtain the same `TVar` for one key); cell *contents* remain under
//! full STM arbitration, so serializability is untouched.
//!
//! **Commit-time cell GC.** Unlike the original design, an overflow cell
//! does not live forever once touched: a committed `DEL` reclaims it. The
//! deleting transaction writes the [`CellState::Dead`] tombstone into the
//! cell transactionally and registers a deferred action
//! ([`stm_core::Txn::defer_on_commit`]) that — only if the delete actually
//! committed and the tombstone is still the committed value — unlinks the
//! cell from its shard table and retires it to the [`stm_core::EpochGc`]
//! limbo, where it is dropped once every transaction that could still hold
//! the old reference has unpinned.
//!
//! The tombstone is what makes the unlink race-free without blind writes:
//! **every** store operation reads a key's cell before writing it (the
//! [`KvStore::live_cell`] protocol). A committed `Dead` value is terminal —
//! the only transaction allowed to overwrite a tombstone is the one that
//! wrote it (a `DEL` followed by a `PUT` of the same key in one
//! transaction, detected via [`stm_core::Txn::owns`]). A transaction that
//! reads a committed tombstone therefore knows the cell is unlinked (or
//! about to be), helps remove it from the table, and re-fetches a fresh
//! cell; a transaction that raced the delete while it was still active
//! conflicts with it on the cell itself and is arbitrated by the contention
//! manager as usual. Keyspace growth is observable end to end:
//! [`KvStore::cells_allocated`] counts every cell ever materialised
//! (monotone), and the `cells_freed=`/`limbo=` counters exported in `STATS`
//! come from the epoch domain's reclamation totals.
//!
//! **Typing.** The arithmetic operations (`ADD`, and `SUM` over a range)
//! are only defined on `Int` values: hitting a `Str`/`Bytes` value reports
//! a [`TypeMismatch`] naming the offending key and the kind found, which
//! the server surfaces as a `TYPE` error without aborting the transaction.
//!
//! All operations run inside the caller's transaction and compose: the
//! server's `BEGIN`/`EXEC` batches simply run several store operations in
//! one `atomically` closure, which is what makes multi-key batches
//! serializable across clients.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use stm_core::{EpochGc, TVar, TxResult, Txn};
use stm_structures::{ShardedTxSet, TxSet};

use crate::Value;

/// An arithmetic operation hit a non-integer value: the typed error `ADD`
/// and `SUM` report instead of silently coercing (or crashing on) a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeMismatch {
    /// The key whose value has the wrong kind.
    pub key: i64,
    /// The kind actually stored there (`str` or `bytes`).
    pub found: &'static str,
}

impl std::fmt::Display for TypeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "key {} holds a {} value, not an int", self.key, self.found)
    }
}

impl std::error::Error for TypeMismatch {}

/// The transactional state of one value cell.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CellState {
    /// No value; the cell is linked (or pre-allocated) and reusable.
    Vacant,
    /// A present value.
    Full(Value),
    /// The tombstone a committed `DEL` leaves in an overflow cell. Terminal
    /// once committed: the deleter unlinks and retires the cell, and any
    /// other transaction that reads this state re-fetches a fresh cell.
    Dead,
}

impl CellState {
    fn into_value(self) -> Option<Value> {
        match self {
            CellState::Full(value) => Some(value),
            CellState::Vacant | CellState::Dead => None,
        }
    }
}

/// One shard's overflow cell table. The mutex guards cell identity only;
/// it is never held across an STM operation.
#[derive(Debug, Default)]
struct CellShard {
    cells: Mutex<HashMap<i64, TVar<CellState>>>,
}

impl CellShard {
    /// Removes `cell` from the table (if it is still the cell linked under
    /// `key`) and retires it to `gc`. Idempotent under the table lock:
    /// exactly one caller — the deleter's deferred commit action or a
    /// helping writer that found the tombstone first — wins the unlink and
    /// performs the retire. Returns whether this call unlinked.
    fn unlink_dead(&self, gc: &EpochGc, key: i64, cell: &TVar<CellState>) -> bool {
        let mut cells = self.cells.lock();
        let linked = cells.get(&key).is_some_and(|entry| entry.same_object(cell));
        if linked {
            cells.remove(&key);
        }
        drop(cells);
        if linked {
            gc.retire(Box::new(cell.clone()));
        }
        linked
    }
}

/// A dynamic transactional `i64 → Value` key-value store with commit-time
/// reclamation of deleted keys' cells.
#[derive(Debug)]
pub struct KvStore {
    index: ShardedTxSet,
    /// Lock-free, permanent cells for the pre-allocated range
    /// `0..prealloc.len()` — never unlinked, a delete writes `Vacant`.
    prealloc: Vec<TVar<CellState>>,
    /// Per-shard overflow tables; `overflow[k.rem_euclid(shards)]` owns key
    /// `k`'s value cell when `k` is outside the pre-allocated range.
    /// Sharded so cell creation does not serialize across the keyspace;
    /// `Arc` so deferred commit actions can capture their shard.
    overflow: Vec<Arc<CellShard>>,
    /// Overflow cells ever materialised (monotone; freed cells still count).
    overflow_created: AtomicU64,
}

impl KvStore {
    /// Creates an empty store whose membership index (and overflow cell
    /// table) is partitioned over `shards` red-black trees.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn new(shards: usize) -> Self {
        KvStore::with_preallocated(shards, 0)
    }

    /// Creates a store with cells for `0..prealloc` materialised up front:
    /// that range resolves lock-free, exactly as the old fixed-capacity
    /// design did (the server pre-allocates its configured capacity).
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn with_preallocated(shards: usize, prealloc: i64) -> Self {
        assert!(shards > 0, "need at least one shard");
        KvStore {
            index: ShardedTxSet::rbtree(shards),
            prealloc: (0..prealloc.max(0)).map(|_| TVar::new(CellState::Vacant)).collect(),
            overflow: (0..shards).map(|_| Arc::new(CellShard::default())).collect(),
            overflow_created: AtomicU64::new(0),
        }
    }

    /// Number of index shards.
    pub fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    /// Whether `key` resolves through the permanent pre-allocated tier.
    fn is_preallocated(&self, key: i64) -> bool {
        usize::try_from(key).is_ok_and(|i| i < self.prealloc.len())
    }

    /// The overflow shard owning `key`'s cell.
    fn overflow_shard(&self, key: i64) -> &Arc<CellShard> {
        &self.overflow[key.rem_euclid(self.overflow.len() as i64) as usize]
    }

    /// The value cell currently linked for `key` — lock-free inside the
    /// pre-allocated range, created on first touch under the shard's
    /// overflow lock outside it.
    fn fetch_cell(&self, key: i64) -> TVar<CellState> {
        if let Ok(i) = usize::try_from(key) {
            if let Some(cell) = self.prealloc.get(i) {
                return cell.clone();
            }
        }
        let mut cells = self.overflow_shard(key).cells.lock();
        cells
            .entry(key)
            .or_insert_with(|| {
                self.overflow_created.fetch_add(1, Ordering::Relaxed);
                TVar::new(CellState::Vacant)
            })
            .clone()
    }

    /// Fetches `key`'s cell and reads it in `tx`, retrying past committed
    /// tombstones. This is the read-before-write protocol every mutation
    /// goes through: the tracked read is what lets the runtime arbitrate
    /// with a concurrent deleter (or invalidate us if one commits first),
    /// and a committed `Dead` state means the cell is unlinked or about to
    /// be — we help unlink it and fetch the fresh replacement. Our own
    /// uncommitted tombstone (a `DEL` earlier in this transaction) is
    /// returned as-is so a re-`PUT` reuses the same cell.
    fn live_cell(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<(TVar<CellState>, CellState)> {
        loop {
            let cell = self.fetch_cell(key);
            let state = tx.read(&cell)?;
            if state == CellState::Dead && !tx.owns(&cell) {
                self.overflow_shard(key).unlink_dead(tx.epoch(), key, &cell);
                continue;
            }
            return Ok((cell, state));
        }
    }

    /// Number of value cells ever materialised (monotone — reclaimed cells
    /// still count; subtract the epoch domain's reclaimed total for the
    /// live figure, which is what the server's `STATS` reply surfaces as
    /// `cells=` / `cells_freed=` / `limbo=`).
    pub fn cells_allocated(&self) -> usize {
        self.prealloc.len() + self.overflow_created.load(Ordering::Relaxed) as usize
    }

    /// Number of cells currently linked (pre-allocated + overflow tables):
    /// the store's actual resident cell count after reclamation.
    pub fn cells_live(&self) -> usize {
        self.prealloc.len()
            + self
                .overflow
                .iter()
                .map(|shard| shard.cells.lock().len())
                .sum::<usize>()
    }

    /// Number of overflow cells currently linked per shard — how the
    /// outside-the-prealloc keyspace distributes across shards (exported in
    /// the `STATS` reply so it is observable from the wire).
    pub fn overflow_per_shard(&self) -> Vec<usize> {
        self.overflow
            .iter()
            .map(|shard| shard.cells.lock().len())
            .collect()
    }

    /// Reads the value at `key`, or `None` when the key is absent.
    pub fn get(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<Option<Value>> {
        if self.index.contains(tx, key)? {
            let (_cell, state) = self.live_cell(tx, key)?;
            Ok(state.into_value())
        } else {
            Ok(None)
        }
    }

    /// Stores `value` at `key`, returning the previous value if the key was
    /// present.
    pub fn put(
        &self,
        tx: &mut Txn<'_>,
        key: i64,
        value: impl Into<Value>,
    ) -> TxResult<Option<Value>> {
        let was_present = !self.index.insert(tx, key)?;
        let (cell, state) = self.live_cell(tx, key)?;
        tx.write(&cell, CellState::Full(value.into()))?;
        // A newly created key's stale cell content is not part of the map.
        Ok(if was_present { state.into_value() } else { None })
    }

    /// Removes `key`, returning its value if it was present. A
    /// pre-allocated cell is cleared in place; an overflow cell receives
    /// the `Dead` tombstone and, once the delete commits, is unlinked from
    /// its shard table and retired to the epoch limbo for reclamation.
    pub fn del(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<Option<Value>> {
        if !self.index.remove(tx, key)? {
            return Ok(None);
        }
        let (cell, state) = self.live_cell(tx, key)?;
        if self.is_preallocated(key) {
            tx.write(&cell, CellState::Vacant)?;
        } else {
            tx.write(&cell, CellState::Dead)?;
            let shard = Arc::clone(self.overflow_shard(key));
            let tombstone = cell;
            tx.defer_on_commit(move |gc| {
                // Skip when this same transaction re-PUT the key after the
                // DEL: the committed value is then Full, and the cell stays.
                if *tombstone.load_committed_arc() == CellState::Dead {
                    shard.unlink_dead(gc, key, &tombstone);
                }
            });
            return Ok(state.into_value());
        }
        Ok(state.into_value())
    }

    /// Adds `delta` to the integer value at `key` (treating an absent key as
    /// `0` and inserting it), returning the new value — or a
    /// [`TypeMismatch`] when the key holds a non-integer value. This is the
    /// closed read-modify-write the `BEGIN`/`EXEC` transfer batches are
    /// built from.
    pub fn add(
        &self,
        tx: &mut Txn<'_>,
        key: i64,
        delta: i64,
    ) -> TxResult<Result<i64, TypeMismatch>> {
        let created = self.index.insert(tx, key)?;
        let (cell, state) = self.live_cell(tx, key)?;
        let current = if created {
            // Newly created: the stale cell content is not part of the map.
            0
        } else {
            match state {
                CellState::Full(Value::Int(v)) => v,
                CellState::Full(other) => {
                    return Ok(Err(TypeMismatch {
                        key,
                        found: other.type_name(),
                    }))
                }
                // Index says present, so the cell cannot hold a committed
                // non-value; treat a (logically impossible) gap as zero.
                CellState::Vacant | CellState::Dead => 0,
            }
        };
        let next = current.wrapping_add(delta);
        tx.write(&cell, CellState::Full(Value::Int(next)))?;
        Ok(Ok(next))
    }

    /// The present keys in `lo..=hi` with their values, ascending.
    pub fn range(&self, tx: &mut Txn<'_>, lo: i64, hi: i64) -> TxResult<Vec<(i64, Value)>> {
        let mut pairs = Vec::new();
        if lo > hi {
            return Ok(pairs);
        }
        for key in self.index.range(tx, lo, hi)? {
            let (_cell, state) = self.live_cell(tx, key)?;
            if let Some(value) = state.into_value() {
                pairs.push((key, value));
            }
        }
        Ok(pairs)
    }

    /// The sum and count of the integer values present in `lo..=hi`,
    /// observed as one consistent snapshot — the conservation audit the
    /// serializability tests run over the wire. A non-integer value in the
    /// window is a [`TypeMismatch`] naming the first offending key.
    pub fn sum(
        &self,
        tx: &mut Txn<'_>,
        lo: i64,
        hi: i64,
    ) -> TxResult<Result<(i64, usize), TypeMismatch>> {
        let pairs = self.range(tx, lo, hi)?;
        let mut total = 0i64;
        for (key, value) in &pairs {
            match value {
                Value::Int(v) => total = total.wrapping_add(*v),
                other => {
                    return Ok(Err(TypeMismatch {
                        key: *key,
                        found: other.type_name(),
                    }))
                }
            }
        }
        Ok(Ok((total, pairs.len())))
    }

    /// Every present key with its value, ascending — the consistent cut a
    /// point-in-time snapshot persists. Runs inside the caller's
    /// transaction, so concurrent writers serialize against it.
    pub fn dump(&self, tx: &mut Txn<'_>) -> TxResult<Vec<(i64, Value)>> {
        let mut pairs = Vec::new();
        for key in self.index.to_vec(tx)? {
            let (_cell, state) = self.live_cell(tx, key)?;
            if let Some(value) = state.into_value() {
                pairs.push((key, value));
            }
        }
        Ok(pairs)
    }

    /// Number of present keys.
    pub fn len(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        self.index.len(tx)
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::Stm;

    fn int(v: i64) -> Option<Value> {
        Some(Value::Int(v))
    }

    #[test]
    fn get_put_del_add_round_trip() {
        let stm = Stm::default();
        let store = KvStore::new(4);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            assert_eq!(store.get(tx, 5)?, None);
            assert_eq!(store.put(tx, 5, 50)?, None);
            assert_eq!(store.get(tx, 5)?, int(50));
            assert_eq!(store.put(tx, 5, 60)?, int(50));
            assert_eq!(store.add(tx, 5, -10)?, Ok(50));
            assert_eq!(store.add(tx, 9, 7)?, Ok(7), "add creates absent keys at 0");
            assert_eq!(store.del(tx, 5)?, int(50));
            assert_eq!(store.del(tx, 5)?, None);
            assert_eq!(store.len(tx)?, 1);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn typed_values_round_trip_and_gate_arithmetic() {
        let stm = Stm::default();
        let store = KvStore::new(4);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            store.put(tx, 1, "hello\nworld \0")?;
            store.put(tx, 2, vec![0u8, 255, 10])?;
            store.put(tx, 3, 30)?;
            assert_eq!(store.get(tx, 1)?, Some(Value::Str("hello\nworld \0".into())));
            assert_eq!(store.get(tx, 2)?, Some(Value::Bytes(vec![0, 255, 10])));
            // ADD on a string is a typed error, not an abort: the
            // transaction continues and the value is untouched.
            assert_eq!(
                store.add(tx, 1, 5)?,
                Err(TypeMismatch { key: 1, found: "str" })
            );
            assert_eq!(store.get(tx, 1)?, Some(Value::Str("hello\nworld \0".into())));
            // SUM over a window containing a blob names the offending key.
            assert_eq!(
                store.sum(tx, 0, 10)?,
                Err(TypeMismatch { key: 1, found: "str" })
            );
            // A window of ints still sums.
            assert_eq!(store.sum(tx, 3, 10)?, Ok((30, 1)));
            // Overwriting with an int restores arithmetic.
            store.put(tx, 1, 1)?;
            store.del(tx, 2)?;
            assert_eq!(store.sum(tx, 0, 10)?, Ok((31, 2)));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn keyspace_grows_on_demand_including_negative_and_huge_keys() {
        let stm = Stm::default();
        let store = KvStore::new(4);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            assert_eq!(store.put(tx, -1_000_000, 1)?, None);
            assert_eq!(store.put(tx, i64::MAX, 2)?, None);
            assert_eq!(store.add(tx, i64::MIN, -3)?, Ok(-3));
            assert_eq!(store.get(tx, -1_000_000)?, int(1));
            assert_eq!(store.get(tx, i64::MAX)?, int(2));
            assert_eq!(store.len(tx)?, 3);
            Ok(())
        })
        .unwrap();
        assert!(store.cells_allocated() >= 3);
        assert_eq!(
            store.overflow_per_shard().iter().sum::<usize>(),
            store.cells_allocated(),
            "no prealloc, no deletes: every cell ever created is still linked"
        );
        assert_eq!(store.overflow_per_shard().len(), 4);
    }

    #[test]
    fn deleted_key_recreated_by_add_starts_at_zero() {
        let stm = Stm::default();
        let store = KvStore::new(2);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            store.put(tx, 3, 99)?;
            store.del(tx, 3)?;
            // The old cell content must not leak back into the map.
            assert_eq!(store.add(tx, 3, 1)?, Ok(1));
            assert_eq!(store.get(tx, 3)?, int(1));
            // Same for a deleted string value.
            store.put(tx, 4, "gone")?;
            store.del(tx, 4)?;
            assert_eq!(store.add(tx, 4, 2)?, Ok(2), "deleted str must not block ADD");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn committed_delete_unlinks_and_reclaims_the_overflow_cell() {
        let stm = Stm::default();
        let store = KvStore::new(2);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| store.put(tx, 1_000, 7)).unwrap();
        assert_eq!(store.cells_allocated(), 1);
        assert_eq!(store.cells_live(), 1);
        ctx.atomically(|tx| store.del(tx, 1_000)).unwrap();
        // The deferred commit action unlinked the cell; with no other
        // transaction pinned, the epoch domain reclaims it immediately.
        assert_eq!(store.cells_live(), 0, "deleted cell must leave the table");
        stm.epoch().collect();
        assert_eq!(stm.epoch().limbo_len(), 0);
        assert_eq!(stm.epoch().reclaimed_total(), 1);
        assert_eq!(store.cells_allocated(), 1, "allocation count stays monotone");
        // The key is re-creatable and gets a fresh cell.
        ctx.atomically(|tx| store.put(tx, 1_000, 8)).unwrap();
        assert_eq!(store.cells_live(), 1);
        assert_eq!(store.cells_allocated(), 2);
        assert_eq!(
            ctx.atomically(|tx| store.get(tx, 1_000)).unwrap(),
            int(8)
        );
    }

    #[test]
    fn del_then_put_in_one_transaction_keeps_the_cell() {
        let stm = Stm::default();
        let store = KvStore::new(2);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| store.put(tx, 500, 1)).unwrap();
        ctx.atomically(|tx| {
            store.del(tx, 500)?;
            store.put(tx, 500, 2)
        })
        .unwrap();
        // The re-PUT overwrote the tombstone before commit, so the deferred
        // unlink must have been a no-op: same cell, nothing retired.
        assert_eq!(store.cells_allocated(), 1);
        assert_eq!(store.cells_live(), 1);
        assert_eq!(stm.epoch().retired_total(), 0);
        assert_eq!(ctx.atomically(|tx| store.get(tx, 500)).unwrap(), int(2));
    }

    #[test]
    fn aborted_delete_reclaims_nothing() {
        let stm = Stm::default();
        let store = KvStore::new(2);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| store.put(tx, 900, 5)).unwrap();
        let _ = ctx.atomically(|tx| {
            store.del(tx, 900)?;
            tx.abort::<()>()
        });
        assert_eq!(store.cells_live(), 1, "aborted DEL must not unlink");
        assert_eq!(stm.epoch().retired_total(), 0);
        assert_eq!(ctx.atomically(|tx| store.get(tx, 900)).unwrap(), int(5));
    }

    #[test]
    fn preallocated_cells_survive_deletes() {
        let stm = Stm::default();
        let store = KvStore::with_preallocated(2, 8);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| store.put(tx, 3, 30)).unwrap();
        ctx.atomically(|tx| store.del(tx, 3)).unwrap();
        assert_eq!(store.cells_allocated(), 8);
        assert_eq!(store.cells_live(), 8, "prealloc cells are permanent");
        assert_eq!(stm.epoch().retired_total(), 0);
        assert_eq!(ctx.atomically(|tx| store.get(tx, 3)).unwrap(), None);
        ctx.atomically(|tx| store.put(tx, 3, 31)).unwrap();
        assert_eq!(ctx.atomically(|tx| store.get(tx, 3)).unwrap(), int(31));
    }

    #[test]
    fn put_del_churn_under_contention_stays_bounded_and_conserves() {
        use std::sync::Arc as StdArc;
        let stm = StdArc::new(Stm::default());
        let store = StdArc::new(KvStore::new(4));
        let threads = 4usize;
        let ops = 300i64;
        let window = 8i64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let stm = StdArc::clone(&stm);
                let store = StdArc::clone(&store);
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    let base = 10_000 + (t as i64) * 100_000;
                    for i in 0..ops {
                        ctx.atomically(|tx| store.put(tx, base + i, i)).unwrap();
                        if i >= window {
                            let victim = base + i - window;
                            let prev =
                                ctx.atomically(|tx| store.del(tx, victim)).unwrap();
                            assert_eq!(prev, int(i - window), "lost write at {victim}");
                        }
                    }
                });
            }
        });
        stm.epoch().collect();
        let live = threads as i64 * window;
        assert_eq!(
            store.cells_live() as i64,
            live,
            "table must hold exactly the live keys after churn"
        );
        let stats = stm.epoch().stats();
        assert_eq!(stats.retired, stats.reclaimed + stats.limbo, "{stats:?}");
        assert_eq!(
            store.cells_allocated() as u64,
            store.cells_live() as u64 + stats.retired,
            "every allocated cell is either linked or was retired"
        );
        // All threads have unpinned, so limbo drains completely.
        stm.epoch().collect();
        stm.epoch().collect();
        assert_eq!(stm.epoch().limbo_len(), 0, "{:?}", stm.epoch().stats());
    }

    #[test]
    fn range_sum_and_dump_snapshot_consistently() {
        let stm = Stm::default();
        let store = KvStore::with_preallocated(4, 32);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            for key in [2i64, 7, 11, 30, 500] {
                store.put(tx, key, key * 10)?;
            }
            Ok(())
        })
        .unwrap();
        let pairs = ctx.atomically(|tx| store.range(tx, -100, 100)).unwrap();
        let as_ints: Vec<(i64, i64)> = pairs
            .iter()
            .map(|(k, v)| (*k, v.as_int().unwrap()))
            .collect();
        assert_eq!(as_ints, vec![(2, 20), (7, 70), (11, 110), (30, 300)]);
        let window = ctx.atomically(|tx| store.range(tx, 3, 11)).unwrap();
        assert_eq!(window.len(), 2);
        assert_eq!(ctx.atomically(|tx| store.sum(tx, 0, 31)).unwrap(), Ok((500, 4)));
        assert_eq!(ctx.atomically(|tx| store.sum(tx, 12, 3)).unwrap(), Ok((0, 0)));
        let dump = ctx.atomically(|tx| store.dump(tx)).unwrap();
        assert_eq!(dump.len(), 5);
        assert_eq!(dump[4], (500, Value::Int(5000)));
    }

    #[test]
    fn concurrent_first_touch_of_one_key_agrees_on_the_cell() {
        use std::sync::Arc;
        let stm = Arc::new(Stm::default());
        let store = Arc::new(KvStore::new(4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for _ in 0..250 {
                        ctx.atomically(|tx| store.add(tx, 12345, 1)).unwrap().unwrap();
                    }
                });
            }
        });
        let mut ctx = stm.thread();
        assert_eq!(
            ctx.atomically(|tx| store.get(tx, 12345)).unwrap(),
            int(1000),
            "increments through a racing first-touch cell must not be lost"
        );
    }
}
