//! The transactional keyspace behind the server.
//!
//! A [`KvStore`] is a **dynamic** map from arbitrary `i64` keys to typed
//! [`Value`]s (`Int` / `Str` / `Bytes`). Presence is tracked by a sharded
//! red-black-tree index ([`ShardedTxSet`]); each key's value lives in its
//! own [`TVar<Option<Value>>`]. The split matters for contention: a
//! `PUT`/`ADD` conflicts with another transaction only when both touch the
//! same key's value cell or the same index path inside one shard —
//! transactions on different shards are disjoint by construction.
//!
//! Value cells live in two tiers. Keys inside the pre-allocated range
//! (`0..prealloc`, the server's `--capacity` warm-up hint) resolve through
//! a plain `Vec` — the same lock-free hot path the old fixed-capacity
//! design had. Keys outside it are materialised on first touch: each shard
//! owns a `Mutex<HashMap<key, TVar>>` overflow table, and `cell()` does a
//! brief get-or-insert under that leaf lock. The lock guards only cell
//! *identity* (two racing transactions must obtain the same `TVar` for one
//! key — the create-on-first-use race the old design avoided by
//! pre-allocating); cell *contents* remain under full STM arbitration, so
//! serializability is untouched. Once created, a cell is never removed:
//! `DEL` removes the key from the index (the transactional source of truth
//! for membership) and writes `None` into the cell, leaving the `TVar` for
//! cheap re-insertion — a deliberate trade: memory grows with the number of
//! *distinct keys ever touched* (see [`KvStore::cells_allocated`] and
//! [`KvStore::overflow_per_shard`], both exported over the wire in
//! `STATS`), which is what lets the server recover an arbitrary keyspace
//! from a log and lets `PUT`s outside any pre-declared range succeed
//! without an admission race.
//!
//! **Typing.** The arithmetic operations (`ADD`, and `SUM` over a range)
//! are only defined on `Int` values: hitting a `Str`/`Bytes` value reports
//! a [`TypeMismatch`] naming the offending key and the kind found, which
//! the server surfaces as a `TYPE` error without aborting the transaction.
//!
//! All operations run inside the caller's transaction and compose: the
//! server's `BEGIN`/`EXEC` batches simply run several store operations in
//! one `atomically` closure, which is what makes multi-key batches
//! serializable across clients.

use std::collections::HashMap;
use std::sync::Mutex;

use stm_core::{TVar, TxResult, Txn};
use stm_structures::{ShardedTxSet, TxSet};

use crate::Value;

/// An arithmetic operation hit a non-integer value: the typed error `ADD`
/// and `SUM` report instead of silently coercing (or crashing on) a string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeMismatch {
    /// The key whose value has the wrong kind.
    pub key: i64,
    /// The kind actually stored there (`str` or `bytes`).
    pub found: &'static str,
}

impl std::fmt::Display for TypeMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "key {} holds a {} value, not an int", self.key, self.found)
    }
}

impl std::error::Error for TypeMismatch {}

/// A dynamic transactional `i64 → Value` key-value store.
#[derive(Debug)]
pub struct KvStore {
    index: ShardedTxSet,
    /// Lock-free cells for the pre-allocated range `0..prealloc.len()`.
    prealloc: Vec<TVar<Option<Value>>>,
    /// Per-shard overflow tables; `overflow[k.rem_euclid(shards)]` owns key
    /// `k`'s value cell when `k` is outside the pre-allocated range.
    /// Sharded so cell creation does not serialize across the keyspace.
    overflow: Vec<Mutex<HashMap<i64, TVar<Option<Value>>>>>,
}

impl KvStore {
    /// Creates an empty store whose membership index (and overflow cell
    /// table) is partitioned over `shards` red-black trees.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn new(shards: usize) -> Self {
        KvStore::with_preallocated(shards, 0)
    }

    /// Creates a store with cells for `0..prealloc` materialised up front:
    /// that range resolves lock-free, exactly as the old fixed-capacity
    /// design did (the server pre-allocates its configured capacity).
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn with_preallocated(shards: usize, prealloc: i64) -> Self {
        assert!(shards > 0, "need at least one shard");
        KvStore {
            index: ShardedTxSet::rbtree(shards),
            prealloc: (0..prealloc.max(0)).map(|_| TVar::new(None)).collect(),
            overflow: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Number of index shards.
    pub fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    /// The value cell for `key` — lock-free inside the pre-allocated range,
    /// created on first touch under the shard's overflow lock outside it.
    fn cell(&self, key: i64) -> TVar<Option<Value>> {
        if let Ok(i) = usize::try_from(key) {
            if let Some(cell) = self.prealloc.get(i) {
                return cell.clone();
            }
        }
        let shard = key.rem_euclid(self.overflow.len() as i64) as usize;
        let mut cells = self.overflow[shard].lock().expect("cell table lock poisoned");
        cells.entry(key).or_insert_with(|| TVar::new(None)).clone()
    }

    /// Number of value cells materialised so far (monotone; an upper bound
    /// on the number of live keys, and the measure of the grows-forever
    /// trade-off documented on the module).
    pub fn cells_allocated(&self) -> usize {
        self.prealloc.len()
            + self
                .overflow
                .iter()
                .map(|shard| shard.lock().expect("cell table lock poisoned").len())
                .sum::<usize>()
    }

    /// Number of overflow cells materialised per shard — how the
    /// outside-the-prealloc keyspace growth distributes across shards
    /// (exported in the `STATS` reply so it is observable from the wire).
    pub fn overflow_per_shard(&self) -> Vec<usize> {
        self.overflow
            .iter()
            .map(|shard| shard.lock().expect("cell table lock poisoned").len())
            .collect()
    }

    /// Reads the value at `key`, or `None` when the key is absent.
    pub fn get(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<Option<Value>> {
        if self.index.contains(tx, key)? {
            Ok(tx.read(&self.cell(key))?)
        } else {
            Ok(None)
        }
    }

    /// Stores `value` at `key`, returning the previous value if the key was
    /// present.
    pub fn put(
        &self,
        tx: &mut Txn<'_>,
        key: i64,
        value: impl Into<Value>,
    ) -> TxResult<Option<Value>> {
        let was_present = !self.index.insert(tx, key)?;
        let cell = self.cell(key);
        let previous = if was_present { tx.read(&cell)? } else { None };
        tx.write(&cell, Some(value.into()))?;
        Ok(previous)
    }

    /// Removes `key`, returning its value if it was present. The cell is
    /// cleared to `None` so a large deleted value does not linger in memory.
    pub fn del(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<Option<Value>> {
        if self.index.remove(tx, key)? {
            let cell = self.cell(key);
            let previous = tx.read(&cell)?;
            tx.write(&cell, None)?;
            Ok(previous)
        } else {
            Ok(None)
        }
    }

    /// Adds `delta` to the integer value at `key` (treating an absent key as
    /// `0` and inserting it), returning the new value — or a
    /// [`TypeMismatch`] when the key holds a non-integer value. This is the
    /// closed read-modify-write the `BEGIN`/`EXEC` transfer batches are
    /// built from.
    pub fn add(
        &self,
        tx: &mut Txn<'_>,
        key: i64,
        delta: i64,
    ) -> TxResult<Result<i64, TypeMismatch>> {
        let cell = self.cell(key);
        let current = if self.index.insert(tx, key)? {
            // Newly created: the stale cell content is not part of the map.
            0
        } else {
            match tx.read(&cell)? {
                Some(Value::Int(v)) => v,
                // Index says present, so the cell cannot hold None; treat a
                // (logically impossible) None as an empty int for safety.
                None => 0,
                Some(other) => {
                    return Ok(Err(TypeMismatch {
                        key,
                        found: other.type_name(),
                    }))
                }
            }
        };
        let next = current.wrapping_add(delta);
        tx.write(&cell, Some(Value::Int(next)))?;
        Ok(Ok(next))
    }

    /// The present keys in `lo..=hi` with their values, ascending.
    pub fn range(&self, tx: &mut Txn<'_>, lo: i64, hi: i64) -> TxResult<Vec<(i64, Value)>> {
        let mut pairs = Vec::new();
        if lo > hi {
            return Ok(pairs);
        }
        for key in self.index.range(tx, lo, hi)? {
            if let Some(value) = tx.read(&self.cell(key))? {
                pairs.push((key, value));
            }
        }
        Ok(pairs)
    }

    /// The sum and count of the integer values present in `lo..=hi`,
    /// observed as one consistent snapshot — the conservation audit the
    /// serializability tests run over the wire. A non-integer value in the
    /// window is a [`TypeMismatch`] naming the first offending key.
    pub fn sum(
        &self,
        tx: &mut Txn<'_>,
        lo: i64,
        hi: i64,
    ) -> TxResult<Result<(i64, usize), TypeMismatch>> {
        let pairs = self.range(tx, lo, hi)?;
        let mut total = 0i64;
        for (key, value) in &pairs {
            match value {
                Value::Int(v) => total = total.wrapping_add(*v),
                other => {
                    return Ok(Err(TypeMismatch {
                        key: *key,
                        found: other.type_name(),
                    }))
                }
            }
        }
        Ok(Ok((total, pairs.len())))
    }

    /// Every present key with its value, ascending — the consistent cut a
    /// point-in-time snapshot persists. Runs inside the caller's
    /// transaction, so concurrent writers serialize against it.
    pub fn dump(&self, tx: &mut Txn<'_>) -> TxResult<Vec<(i64, Value)>> {
        let mut pairs = Vec::new();
        for key in self.index.to_vec(tx)? {
            if let Some(value) = tx.read(&self.cell(key))? {
                pairs.push((key, value));
            }
        }
        Ok(pairs)
    }

    /// Number of present keys.
    pub fn len(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        self.index.len(tx)
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::Stm;

    fn int(v: i64) -> Option<Value> {
        Some(Value::Int(v))
    }

    #[test]
    fn get_put_del_add_round_trip() {
        let stm = Stm::default();
        let store = KvStore::new(4);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            assert_eq!(store.get(tx, 5)?, None);
            assert_eq!(store.put(tx, 5, 50)?, None);
            assert_eq!(store.get(tx, 5)?, int(50));
            assert_eq!(store.put(tx, 5, 60)?, int(50));
            assert_eq!(store.add(tx, 5, -10)?, Ok(50));
            assert_eq!(store.add(tx, 9, 7)?, Ok(7), "add creates absent keys at 0");
            assert_eq!(store.del(tx, 5)?, int(50));
            assert_eq!(store.del(tx, 5)?, None);
            assert_eq!(store.len(tx)?, 1);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn typed_values_round_trip_and_gate_arithmetic() {
        let stm = Stm::default();
        let store = KvStore::new(4);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            store.put(tx, 1, "hello\nworld \0")?;
            store.put(tx, 2, vec![0u8, 255, 10])?;
            store.put(tx, 3, 30)?;
            assert_eq!(store.get(tx, 1)?, Some(Value::Str("hello\nworld \0".into())));
            assert_eq!(store.get(tx, 2)?, Some(Value::Bytes(vec![0, 255, 10])));
            // ADD on a string is a typed error, not an abort: the
            // transaction continues and the value is untouched.
            assert_eq!(
                store.add(tx, 1, 5)?,
                Err(TypeMismatch { key: 1, found: "str" })
            );
            assert_eq!(store.get(tx, 1)?, Some(Value::Str("hello\nworld \0".into())));
            // SUM over a window containing a blob names the offending key.
            assert_eq!(
                store.sum(tx, 0, 10)?,
                Err(TypeMismatch { key: 1, found: "str" })
            );
            // A window of ints still sums.
            assert_eq!(store.sum(tx, 3, 10)?, Ok((30, 1)));
            // Overwriting with an int restores arithmetic.
            store.put(tx, 1, 1)?;
            store.del(tx, 2)?;
            assert_eq!(store.sum(tx, 0, 10)?, Ok((31, 2)));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn keyspace_grows_on_demand_including_negative_and_huge_keys() {
        let stm = Stm::default();
        let store = KvStore::new(4);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            assert_eq!(store.put(tx, -1_000_000, 1)?, None);
            assert_eq!(store.put(tx, i64::MAX, 2)?, None);
            assert_eq!(store.add(tx, i64::MIN, -3)?, Ok(-3));
            assert_eq!(store.get(tx, -1_000_000)?, int(1));
            assert_eq!(store.get(tx, i64::MAX)?, int(2));
            assert_eq!(store.len(tx)?, 3);
            Ok(())
        })
        .unwrap();
        assert!(store.cells_allocated() >= 3);
        assert_eq!(
            store.overflow_per_shard().iter().sum::<usize>(),
            store.cells_allocated(),
            "no prealloc: every cell is an overflow cell"
        );
        assert_eq!(store.overflow_per_shard().len(), 4);
    }

    #[test]
    fn deleted_key_recreated_by_add_starts_at_zero() {
        let stm = Stm::default();
        let store = KvStore::new(2);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            store.put(tx, 3, 99)?;
            store.del(tx, 3)?;
            // The old cell content must not leak back into the map.
            assert_eq!(store.add(tx, 3, 1)?, Ok(1));
            assert_eq!(store.get(tx, 3)?, int(1));
            // Same for a deleted string value.
            store.put(tx, 4, "gone")?;
            store.del(tx, 4)?;
            assert_eq!(store.add(tx, 4, 2)?, Ok(2), "deleted str must not block ADD");
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn range_sum_and_dump_snapshot_consistently() {
        let stm = Stm::default();
        let store = KvStore::with_preallocated(4, 32);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            for key in [2i64, 7, 11, 30, 500] {
                store.put(tx, key, key * 10)?;
            }
            Ok(())
        })
        .unwrap();
        let pairs = ctx.atomically(|tx| store.range(tx, -100, 100)).unwrap();
        let as_ints: Vec<(i64, i64)> = pairs
            .iter()
            .map(|(k, v)| (*k, v.as_int().unwrap()))
            .collect();
        assert_eq!(as_ints, vec![(2, 20), (7, 70), (11, 110), (30, 300)]);
        let window = ctx.atomically(|tx| store.range(tx, 3, 11)).unwrap();
        assert_eq!(window.len(), 2);
        assert_eq!(ctx.atomically(|tx| store.sum(tx, 0, 31)).unwrap(), Ok((500, 4)));
        assert_eq!(ctx.atomically(|tx| store.sum(tx, 12, 3)).unwrap(), Ok((0, 0)));
        let dump = ctx.atomically(|tx| store.dump(tx)).unwrap();
        assert_eq!(dump.len(), 5);
        assert_eq!(dump[4], (500, Value::Int(5000)));
    }

    #[test]
    fn concurrent_first_touch_of_one_key_agrees_on_the_cell() {
        use std::sync::Arc;
        let stm = Arc::new(Stm::default());
        let store = Arc::new(KvStore::new(4));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let mut ctx = stm.thread();
                    for _ in 0..250 {
                        ctx.atomically(|tx| store.add(tx, 12345, 1)).unwrap().unwrap();
                    }
                });
            }
        });
        let mut ctx = stm.thread();
        assert_eq!(
            ctx.atomically(|tx| store.get(tx, 12345)).unwrap(),
            int(1000),
            "increments through a racing first-touch cell must not be lost"
        );
    }
}
