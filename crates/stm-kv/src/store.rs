//! The transactional keyspace behind the server.
//!
//! A [`KvStore`] is a fixed-capacity map from keys `0..capacity` to `i64`
//! values. Presence is tracked by a sharded red-black-tree index
//! ([`ShardedTxSet`]); each key's value lives in its own [`TVar`]. The
//! split matters for contention: a `PUT`/`ADD` conflicts with another
//! transaction only when both touch the same key's value cell or the same
//! index path inside one shard — transactions on different shards are
//! disjoint by construction.
//!
//! All operations run inside the caller's transaction and compose: the
//! server's `BEGIN`/`EXEC` batches simply run several store operations in
//! one `atomically` closure, which is what makes multi-key batches
//! serializable across clients.
//!
//! The keyspace is pre-allocated (one `TVar` per possible key) rather than
//! grown dynamically: the STM arbitrates per-object, and materialising the
//! cells up front keeps the hot path free of allocation and of a
//! create-on-first-use race that would otherwise need its own
//! synchronisation. Capacity is a server-start parameter; requests outside
//! `0..capacity` are rejected at the protocol layer before any transaction
//! starts.

use stm_core::{TVar, TxResult, Txn};
use stm_structures::{ShardedTxSet, TxSet};

/// A fixed-capacity transactional `i64 → i64` key-value store.
#[derive(Debug, Clone)]
pub struct KvStore {
    capacity: i64,
    index: ShardedTxSet,
    values: Vec<TVar<i64>>,
}

impl KvStore {
    /// Creates a store for keys `0..capacity`, with the membership index
    /// partitioned over `shards` red-black trees.
    ///
    /// # Panics
    ///
    /// Panics when `capacity <= 0` or `shards == 0`.
    pub fn new(capacity: i64, shards: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(shards > 0, "need at least one shard");
        KvStore {
            capacity,
            index: ShardedTxSet::rbtree(shards),
            values: (0..capacity).map(|_| TVar::new(0)).collect(),
        }
    }

    /// The exclusive upper bound of the keyspace.
    pub fn capacity(&self) -> i64 {
        self.capacity
    }

    /// Number of index shards.
    pub fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    /// Whether `key` is inside the keyspace.
    pub fn key_in_range(&self, key: i64) -> bool {
        (0..self.capacity).contains(&key)
    }

    fn assert_key(&self, key: i64) {
        assert!(
            self.key_in_range(key),
            "key {key} outside keyspace 0..{} (the server validates keys before \
             starting a transaction)",
            self.capacity
        );
    }

    /// Reads the value at `key`, or `None` when the key is absent.
    pub fn get(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<Option<i64>> {
        self.assert_key(key);
        if self.index.contains(tx, key)? {
            Ok(Some(tx.read(&self.values[key as usize])?))
        } else {
            Ok(None)
        }
    }

    /// Stores `value` at `key`, returning the previous value if the key was
    /// present.
    pub fn put(&self, tx: &mut Txn<'_>, key: i64, value: i64) -> TxResult<Option<i64>> {
        self.assert_key(key);
        let was_present = !self.index.insert(tx, key)?;
        let cell = &self.values[key as usize];
        let previous = if was_present {
            Some(tx.read(cell)?)
        } else {
            None
        };
        tx.write(cell, value)?;
        Ok(previous)
    }

    /// Removes `key`, returning its value if it was present.
    pub fn del(&self, tx: &mut Txn<'_>, key: i64) -> TxResult<Option<i64>> {
        self.assert_key(key);
        if self.index.remove(tx, key)? {
            Ok(Some(tx.read(&self.values[key as usize])?))
        } else {
            Ok(None)
        }
    }

    /// Adds `delta` to the value at `key` (treating an absent key as `0` and
    /// inserting it), returning the new value. This is the closed
    /// read-modify-write the `BEGIN`/`EXEC` transfer batches are built from.
    pub fn add(&self, tx: &mut Txn<'_>, key: i64, delta: i64) -> TxResult<i64> {
        self.assert_key(key);
        let cell = &self.values[key as usize];
        let current = if self.index.insert(tx, key)? {
            // Newly created: the stale cell content is not part of the map.
            0
        } else {
            tx.read(cell)?
        };
        let next = current.wrapping_add(delta);
        tx.write(cell, next)?;
        Ok(next)
    }

    /// The present keys in `lo..=hi` with their values, ascending. Bounds
    /// are clamped to the keyspace.
    pub fn range(&self, tx: &mut Txn<'_>, lo: i64, hi: i64) -> TxResult<Vec<(i64, i64)>> {
        let lo = lo.max(0);
        let hi = hi.min(self.capacity - 1);
        let mut pairs = Vec::new();
        if lo > hi {
            return Ok(pairs);
        }
        for key in self.index.range(tx, lo, hi)? {
            pairs.push((key, tx.read(&self.values[key as usize])?));
        }
        Ok(pairs)
    }

    /// The sum and count of the values present in `lo..=hi`, observed as one
    /// consistent snapshot — the conservation audit the serializability
    /// tests run over the wire.
    pub fn sum(&self, tx: &mut Txn<'_>, lo: i64, hi: i64) -> TxResult<(i64, usize)> {
        let pairs = self.range(tx, lo, hi)?;
        let total = pairs.iter().map(|(_, v)| *v).fold(0i64, i64::wrapping_add);
        Ok((total, pairs.len()))
    }

    /// Number of present keys.
    pub fn len(&self, tx: &mut Txn<'_>) -> TxResult<usize> {
        self.index.len(tx)
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self, tx: &mut Txn<'_>) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::Stm;

    #[test]
    fn get_put_del_add_round_trip() {
        let stm = Stm::default();
        let store = KvStore::new(64, 4);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            assert_eq!(store.get(tx, 5)?, None);
            assert_eq!(store.put(tx, 5, 50)?, None);
            assert_eq!(store.get(tx, 5)?, Some(50));
            assert_eq!(store.put(tx, 5, 60)?, Some(50));
            assert_eq!(store.add(tx, 5, -10)?, 50);
            assert_eq!(store.add(tx, 9, 7)?, 7, "add creates absent keys at 0");
            assert_eq!(store.del(tx, 5)?, Some(50));
            assert_eq!(store.del(tx, 5)?, None);
            assert_eq!(store.len(tx)?, 1);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn deleted_key_recreated_by_add_starts_at_zero() {
        let stm = Stm::default();
        let store = KvStore::new(16, 2);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            store.put(tx, 3, 99)?;
            store.del(tx, 3)?;
            // The old cell content must not leak back into the map.
            assert_eq!(store.add(tx, 3, 1)?, 1);
            assert_eq!(store.get(tx, 3)?, Some(1));
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn range_and_sum_clamp_and_snapshot() {
        let stm = Stm::default();
        let store = KvStore::new(32, 4);
        let mut ctx = stm.thread();
        ctx.atomically(|tx| {
            for key in [2i64, 7, 11, 30] {
                store.put(tx, key, key * 10)?;
            }
            Ok(())
        })
        .unwrap();
        let pairs = ctx.atomically(|tx| store.range(tx, -100, 100)).unwrap();
        assert_eq!(pairs, vec![(2, 20), (7, 70), (11, 110), (30, 300)]);
        let window = ctx.atomically(|tx| store.range(tx, 3, 11)).unwrap();
        assert_eq!(window, vec![(7, 70), (11, 110)]);
        assert_eq!(ctx.atomically(|tx| store.sum(tx, 0, 31)).unwrap(), (500, 4));
        assert_eq!(ctx.atomically(|tx| store.sum(tx, 12, 3)).unwrap(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "outside keyspace")]
    fn out_of_range_key_panics() {
        let stm = Stm::default();
        let store = KvStore::new(8, 2);
        let mut ctx = stm.thread();
        let _ = ctx.atomically(|tx| store.get(tx, 8));
    }
}
