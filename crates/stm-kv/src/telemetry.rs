//! Server-side telemetry: per-op latency histograms, the transaction
//! attempt/latency accounting fed from the [`TxRunReport`] fold point,
//! event-loop instrumentation, and the `SLOWLOG` ring of slowest requests.
//!
//! Instruments come from the vendored lock-free `metrics` crate: recording
//! on the request path is a couple of relaxed `fetch_add`s on striped
//! cache-padded cells — never a lock, never an allocation. The `METRICS`
//! verb composes this registry's exposition with manually-rendered STM,
//! store and WAL series (see `metrics_payload` in [`crate::server`]).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use metrics::{Gauge, Histogram, Registry};
use parking_lot::Mutex;
use stm_core::{AbortCause, TxRunReport, ABORT_CAUSES};

/// Operation labels of the per-op latency histograms, in a fixed order so
/// [`op_index`] is a dense lookup. `EXEC` covers a whole `BEGIN`/`EXEC`
/// batch.
pub(crate) const OP_LABELS: [&str; 7] = ["GET", "PUT", "DEL", "ADD", "RANGE", "SUM", "EXEC"];

/// Index of the `EXEC` label in [`OP_LABELS`].
pub(crate) const OP_EXEC: usize = 6;

/// Index into [`OP_LABELS`] for a standalone data request.
pub(crate) fn op_index(request: &crate::proto::Request) -> usize {
    use crate::proto::Request;
    match request {
        Request::Get(..) => 0,
        Request::Put(..) => 1,
        Request::Del(..) => 2,
        Request::Add(..) => 3,
        Request::Range(..) => 4,
        Request::Sum(..) => 5,
        // Non-data requests never reach the instrumented execution paths;
        // attribute any future slip to the batch bucket rather than panic.
        _ => OP_EXEC,
    }
}

/// Microseconds since `start`, saturating (a histogram records `u64`).
pub(crate) fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Every instrument the serving paths record into, plus the slow-request
/// ring. One per server; both serve modes share it.
pub(crate) struct Telemetry {
    registry: Registry,
    /// End-to-end request latency (execute + render), one series per op.
    op_latency: [Arc<Histogram>; OP_LABELS.len()],
    /// Attempts per `atomically` call (1 = committed first try) — the
    /// per-transaction view of contention, fed from [`TxRunReport`].
    txn_attempts: Arc<Histogram>,
    /// In-transaction latency (inside `atomically_traced`, retries
    /// included) — `op_latency − txn_latency` is serving overhead.
    txn_latency_us: Arc<Histogram>,
    /// How long an event-loop shard slept in `Poller::wait`.
    poll_wait_us: Arc<Histogram>,
    /// Readiness events returned per `Poller::wait` (0 = tick timeout).
    ready_batch: Arc<Histogram>,
    /// Wall time of one shard's shutdown drain pass.
    drain_us: Arc<Histogram>,
    /// The N-slowest-requests ring behind `SLOWLOG`.
    pub(crate) slowlog: SlowLog,
}

impl Telemetry {
    pub(crate) fn new() -> Telemetry {
        let registry = Registry::new();
        let op_latency = std::array::from_fn(|i| {
            registry.histogram("stm_kv_op_latency_us", &[("op", OP_LABELS[i])])
        });
        let txn_attempts = registry.histogram("stm_kv_txn_attempts", &[]);
        let txn_latency_us = registry.histogram("stm_kv_txn_latency_us", &[]);
        let poll_wait_us = registry.histogram("stm_kv_poll_wait_us", &[]);
        let ready_batch = registry.histogram("stm_kv_ready_batch", &[]);
        let drain_us = registry.histogram("stm_kv_drain_us", &[]);
        Telemetry {
            registry,
            op_latency,
            txn_attempts,
            txn_latency_us,
            poll_wait_us,
            ready_batch,
            drain_us,
            slowlog: SlowLog::new(),
        }
    }

    /// The open-connections gauge of one event-loop shard (registered on
    /// first use; the shard holds the handle for its lifetime).
    pub(crate) fn shard_conns(&self, shard: usize) -> Arc<Gauge> {
        self.registry
            .gauge("stm_kv_shard_conns", &[("shard", &shard.to_string())])
    }

    /// Records one executed request: end-to-end latency into the op's
    /// series, attempt count and in-transaction latency from the
    /// [`TxRunReport`] fold point, and a `SLOWLOG` candidacy check.
    pub(crate) fn observe_op(&self, op: usize, report: &TxRunReport, txn_us: u64, wall_us: u64) {
        self.op_latency[op].record(wall_us);
        self.txn_attempts.record(report.attempts);
        self.txn_latency_us.record(txn_us);
        self.slowlog.offer(SlowEntry {
            op: OP_LABELS[op],
            keys: report.reads + report.writes,
            attempts: report.attempts,
            aborts: report.aborts,
            abort_causes: report.abort_causes,
            conflicts: report.conflicts,
            waits: report.waits,
            enemy_aborts: report.enemy_aborts,
            wall_us,
            txn_us,
        });
    }

    pub(crate) fn note_poll_wait(&self, us: u64) {
        self.poll_wait_us.record(us);
    }

    pub(crate) fn note_ready_batch(&self, n: u64) {
        self.ready_batch.record(n);
    }

    pub(crate) fn note_drain(&self, us: u64) {
        self.drain_us.record(us);
    }

    /// The registry's Prometheus text exposition (this is the first section
    /// of the `METRICS` payload).
    pub(crate) fn render(&self) -> String {
        self.registry.render()
    }
}

/// One captured slow request. `keys` counts transactional opens (reads +
/// writes) across every attempt; `wall_us − txn_us` is the time spent
/// outside the transaction (parse, render, bookkeeping) — the serving-queue
/// share of the wall time.
#[derive(Clone, Debug)]
pub(crate) struct SlowEntry {
    pub(crate) op: &'static str,
    pub(crate) keys: u64,
    pub(crate) attempts: u64,
    pub(crate) aborts: u64,
    pub(crate) abort_causes: [u64; ABORT_CAUSES],
    pub(crate) conflicts: u64,
    pub(crate) waits: u64,
    pub(crate) enemy_aborts: u64,
    pub(crate) wall_us: u64,
    pub(crate) txn_us: u64,
}

impl SlowEntry {
    /// Stable `key=value` line, one per entry in the `SLOWLOG` reply.
    /// `causes` breaks the aborts down by [`AbortCause`] label
    /// (`label:count`, comma-separated, `-` when the request never
    /// aborted); `waits`/`enemy_aborts` are the contention-manager verdicts
    /// the request's conflicts drew.
    fn render(&self) -> String {
        let mut causes = String::new();
        for cause in AbortCause::ALL {
            let n = self.abort_causes[cause.index()];
            if n == 0 {
                continue;
            }
            if !causes.is_empty() {
                causes.push(',');
            }
            let _ = write!(causes, "{}:{n}", cause.label());
        }
        if causes.is_empty() {
            causes.push('-');
        }
        format!(
            "op={} keys={} attempts={} aborts={} causes={causes} conflicts={} waits={} \
             enemy_aborts={} wall_us={} txn_us={}",
            self.op,
            self.keys,
            self.attempts,
            self.aborts,
            self.conflicts,
            self.waits,
            self.enemy_aborts,
            self.wall_us,
            self.txn_us,
        )
    }
}

/// Capacity of the slow-request ring (how many entries `SLOWLOG` can
/// return at most).
pub(crate) const SLOWLOG_SLOTS: usize = 64;

/// A fixed ring of the slowest requests seen so far.
///
/// Each slot pairs a lock-free `wall_us` key (0 = empty) with a mutex
/// around the full entry. An offer scans the keys for the currently
/// fastest slot, bails when the candidate is no slower, and otherwise
/// `try_lock`s the victim — a slot mid-update by another thread is
/// *skipped*, not waited on, so the hot path never blocks. The ring is
/// therefore lossy under contention by design: it approximates "the N
/// slowest", trading exactness for a wait-free request path.
pub(crate) struct SlowLog {
    slots: Vec<SlowSlot>,
}

struct SlowSlot {
    wall_us: AtomicU64,
    data: Mutex<Option<SlowEntry>>,
}

impl SlowLog {
    fn new() -> SlowLog {
        SlowLog {
            slots: (0..SLOWLOG_SLOTS)
                .map(|_| SlowSlot {
                    wall_us: AtomicU64::new(0),
                    data: Mutex::new(None),
                })
                .collect(),
        }
    }

    /// Offers a candidate; keeps it only if it is slower than the ring's
    /// current fastest entry (empty slots count as fastest, so the ring
    /// fills first).
    pub(crate) fn offer(&self, entry: SlowEntry) {
        let mut min = u64::MAX;
        let mut victim = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            let w = slot.wall_us.load(Ordering::Relaxed);
            if w < min {
                min = w;
                victim = i;
            }
        }
        if entry.wall_us <= min {
            return;
        }
        let slot = &self.slots[victim];
        if let Some(mut guard) = slot.data.try_lock() {
            slot.wall_us.store(entry.wall_us, Ordering::Relaxed);
            *guard = Some(entry);
        }
    }

    /// The `n` slowest recorded entries, rendered, slowest first.
    pub(crate) fn entries(&self, n: usize) -> Vec<String> {
        let mut collected: Vec<SlowEntry> = self
            .slots
            .iter()
            .filter_map(|slot| slot.data.lock().clone())
            .collect();
        collected.sort_by_key(|e| std::cmp::Reverse(e.wall_us));
        collected.truncate(n);
        collected.iter().map(SlowEntry::render).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(op: &'static str, wall_us: u64) -> SlowEntry {
        SlowEntry {
            op,
            keys: 2,
            attempts: 3,
            aborts: 2,
            abort_causes: {
                let mut causes = [0u64; ABORT_CAUSES];
                causes[AbortCause::KilledByEnemy.index()] = 2;
                causes
            },
            conflicts: 2,
            waits: 1,
            enemy_aborts: 0,
            wall_us,
            txn_us: wall_us / 2,
        }
    }

    #[test]
    fn slowlog_keeps_the_slowest_and_sorts_descending() {
        let log = SlowLog::new();
        for w in 1..=(SLOWLOG_SLOTS as u64 + 40) {
            log.offer(entry("GET", w));
        }
        let top = log.entries(4);
        assert_eq!(top.len(), 4);
        assert!(top[0].contains(&format!("wall_us={}", SLOWLOG_SLOTS as u64 + 40)));
        assert!(top[1].contains(&format!("wall_us={}", SLOWLOG_SLOTS as u64 + 39)));
        // A fast request after the ring filled with slower ones is dropped.
        log.offer(entry("PUT", 1));
        let all = log.entries(SLOWLOG_SLOTS);
        assert_eq!(all.len(), SLOWLOG_SLOTS);
        assert!(all.iter().all(|line| !line.contains("op=PUT")));
    }

    #[test]
    fn slow_entries_render_abort_causes_by_label() {
        let line = entry("EXEC", 500).render();
        assert!(line.starts_with("op=EXEC keys=2 attempts=3 aborts=2 "), "{line}");
        assert!(line.contains("causes=killed_by_enemy:2"), "{line}");
        assert!(line.contains("wall_us=500 txn_us=250"), "{line}");
        let mut clean = entry("GET", 10);
        clean.aborts = 0;
        clean.abort_causes = [0; ABORT_CAUSES];
        assert!(clean.render().contains("causes=-"), "{}", clean.render());
    }

    #[test]
    fn telemetry_renders_every_expected_series_name() {
        let telemetry = Telemetry::new();
        let report = TxRunReport {
            attempts: 2,
            aborts: 1,
            ..TxRunReport::default()
        };
        telemetry.observe_op(0, &report, 10, 15);
        telemetry.note_poll_wait(5);
        telemetry.note_ready_batch(3);
        telemetry.note_drain(100);
        telemetry.shard_conns(0).set(2);
        let text = telemetry.render();
        for name in [
            "stm_kv_op_latency_us_bucket{op=\"GET\"",
            "stm_kv_txn_attempts_count 1",
            "stm_kv_txn_latency_us_count 1",
            "stm_kv_poll_wait_us_count 1",
            "stm_kv_ready_batch_count 1",
            "stm_kv_drain_us_count 1",
            "stm_kv_shard_conns{shard=\"0\"} 2",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }
}
