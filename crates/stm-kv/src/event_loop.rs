//! The readiness event-loop server (`ServeMode::Events`).
//!
//! N shard threads (default one per core) each own a `minipoll::Poller`
//! and a slab of non-blocking connections; one acceptor thread hands new
//! connections to shards round-robin through a small inbox + waker pair.
//! Per-connection state machines own their read/write buffers and feed the
//! same incremental [`process_buffered`] core as the thread-pool server,
//! so the two modes are byte-for-byte compatible on the wire — only the
//! multiplexing differs:
//!
//! * a mostly-idle connection costs one poller registration, not one
//!   blocked OS thread, so a shard holds thousands of them;
//! * a reply that does not fit the socket buffer parks its tail behind
//!   write-readiness (`partial_writes` counts these) instead of blocking
//!   the thread in `write_all`;
//! * an idle-timeout wheel (coarse lazy buckets, generation-guarded
//!   entries) reaps connections dead longer than
//!   [`ServerConfig::idle_timeout`](crate::ServerConfig::idle_timeout);
//! * shutdown drains gracefully: accepting stops, every connection's
//!   already-received bytes are executed and their replies flushed before
//!   the socket closes.
//!
//! Durability is unchanged: a burst whose commits require fsync holds its
//! replies behind [`Wal::wait_durable`](stm_log::Wal) — the shard thread
//! blocks there, which is the same group-commit barrier the pool's worker
//! threads sit on, amortised across every connection that committed in the
//! window.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use minipoll::{net as poll_net, Event, Interest, Poller, Token, Trigger};
use parking_lot::Mutex;
use stm_core::{Stm, ThreadCtx};

use crate::server::{process_buffered, ConnState, Durable, ServerCounters};
use crate::store::KvStore;
use crate::telemetry::{elapsed_us, Telemetry};

/// Token of each shard's waker; connection slots start at 1.
const WAKER_TOKEN: Token = Token(0);

/// How long a shard blocks in `wait` with nothing scheduled. The waker
/// makes shutdown and hand-off latency independent of this; it only bounds
/// how stale an idle-wheel tick can go.
const SHARD_TICK: Duration = Duration::from_millis(50);

/// Events fetched per `wait` call.
const EVENT_BATCH: usize = 1024;

/// Per-read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// At shutdown, a draining flush retries a full socket for at most this
/// long before giving up on the peer.
const DRAIN_FLUSH_BUDGET: Duration = Duration::from_secs(2);

/// Event-mode tuning handed down from [`crate::ServerConfig`].
pub(crate) struct EventConfig {
    /// Shard threads (0 = one per available core).
    pub(crate) shards: usize,
    /// Idle-connection reap threshold (zero disables the wheel).
    pub(crate) idle_timeout: Duration,
}

/// One connection owned by a shard: socket, protocol state machine, and
/// the read/write buffers the state machine works.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    inbuf: Vec<u8>,
    /// Rendered replies not yet accepted by the kernel; `out_pos` marks how
    /// far the flush got (tail = `outbuf[out_pos..]`).
    outbuf: Vec<u8>,
    out_pos: usize,
    /// Registered for write-readiness (a previous flush was partial).
    want_write: bool,
    /// Peer sent EOF; close once the remaining replies are flushed.
    peer_eof: bool,
    last_active: Instant,
    /// Distinguishes this occupant of the slot from earlier ones — stale
    /// idle-wheel entries carry the generation they were scheduled for.
    gen: u64,
}

impl Conn {
    fn pending_out(&self) -> bool {
        self.out_pos < self.outbuf.len()
    }
}

/// A coarse, lazy timer wheel for idle reaping. Entries are hints, not
/// truth: a connection is touched by pushing a fresh `(slot, gen)` into the
/// bucket one timeout away, old entries are never removed, and expiry
/// re-checks the connection's actual `last_active` (reinserting it when it
/// proved fresh). Cost per activity: one push. Cost per tick: the expired
/// bucket only.
struct IdleWheel {
    timeout: Duration,
    granularity: Duration,
    buckets: Vec<Vec<(usize, u64)>>,
    cursor: usize,
    last_tick: Instant,
}

impl IdleWheel {
    fn new(timeout: Duration, now: Instant) -> Option<IdleWheel> {
        if timeout.is_zero() {
            return None;
        }
        let granularity = (timeout / 8).max(Duration::from_millis(10));
        // One lap covers the timeout plus slack for the lazy reinserts.
        let buckets = (timeout.as_nanos() / granularity.as_nanos()) as usize + 2;
        Some(IdleWheel {
            timeout,
            granularity,
            buckets: vec![Vec::new(); buckets],
            cursor: 0,
            last_tick: now,
        })
    }

    /// Schedules `slot` to be checked one timeout from now.
    fn touch(&mut self, slot: usize, gen: u64) {
        let ahead = (self.timeout.as_nanos() / self.granularity.as_nanos()) as usize;
        let index = (self.cursor + ahead) % self.buckets.len();
        self.buckets[index].push((slot, gen));
    }

    /// Advances the cursor to `now`, returning every candidate whose bucket
    /// expired. Callers verify against the live connection before reaping.
    fn expired(&mut self, now: Instant) -> Vec<(usize, u64)> {
        let mut due = Vec::new();
        while now.duration_since(self.last_tick) >= self.granularity {
            self.last_tick += self.granularity;
            self.cursor = (self.cursor + 1) % self.buckets.len();
            due.append(&mut self.buckets[self.cursor]);
        }
        due
    }
}

/// One shard's hand-off inbox: the acceptor pushes, the shard drains after
/// a wake.
struct Inbox {
    pending: Mutex<VecDeque<TcpStream>>,
    waker: poll_net::Waker,
}

/// The running event-loop serving threads; held by `KvServer` and joined on
/// shutdown.
pub(crate) struct EventLoops {
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
    inboxes: Vec<Arc<Inbox>>,
}

impl EventLoops {
    /// Spawns the acceptor and shard threads. The listener stays blocking —
    /// the acceptor is a dedicated thread, unblocked at shutdown by the
    /// same throwaway loopback connection the pool acceptor uses.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        config: EventConfig,
        listener: TcpListener,
        stm: Arc<Stm>,
        store: Arc<KvStore>,
        counters: Arc<ServerCounters>,
        telemetry: Arc<Telemetry>,
        durable: Option<Arc<Durable>>,
        stop: Arc<AtomicBool>,
    ) -> std::io::Result<EventLoops> {
        let shard_count = if config.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            config.shards
        };

        let mut inboxes = Vec::with_capacity(shard_count);
        let mut shards = Vec::with_capacity(shard_count);
        for shard_id in 0..shard_count {
            let (waker, wake_rx) = poll_net::waker()?;
            let inbox = Arc::new(Inbox {
                pending: Mutex::new(VecDeque::new()),
                waker,
            });
            inboxes.push(Arc::clone(&inbox));
            let poller = Poller::new()?;
            poller.register(&wake_rx, WAKER_TOKEN, Interest::READABLE, Trigger::Level)?;
            let stm = Arc::clone(&stm);
            let store = Arc::clone(&store);
            let counters = Arc::clone(&counters);
            let telemetry = Arc::clone(&telemetry);
            let durable = durable.clone();
            let stop = Arc::clone(&stop);
            let idle_timeout = config.idle_timeout;
            shards.push(
                std::thread::Builder::new()
                    .name(format!("stm-kv-shard-{shard_id}"))
                    .spawn(move || {
                        let conns_gauge = telemetry.shard_conns(shard_id);
                        let mut shard = Shard {
                            poller,
                            wake_rx,
                            inbox,
                            conns: Vec::new(),
                            free: Vec::new(),
                            next_gen: 0,
                            wheel: IdleWheel::new(idle_timeout, Instant::now()),
                            store,
                            counters,
                            telemetry,
                            conns_gauge,
                            durable,
                            stop,
                        };
                        let mut ctx = stm.thread();
                        shard.run(&mut ctx);
                    })
                    .expect("spawn shard thread"),
            );
        }

        let acceptor = {
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            let inboxes = inboxes.clone();
            std::thread::Builder::new()
                .name("stm-kv-acceptor".to_string())
                .spawn(move || {
                    let mut next = 0usize;
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        counters.connections.fetch_add(1, Ordering::Relaxed);
                        let inbox = &inboxes[next % inboxes.len()];
                        next = next.wrapping_add(1);
                        inbox.pending.lock().push_back(stream);
                        let _ = inbox.waker.wake();
                    }
                    // Stop is set (or the listener died): wake every shard
                    // so each one enters its graceful drain promptly.
                    for inbox in &inboxes {
                        let _ = inbox.waker.wake();
                    }
                })
                .expect("spawn acceptor thread")
        };

        Ok(EventLoops {
            acceptor: Some(acceptor),
            shards,
            inboxes,
        })
    }

    /// Joins the acceptor and every shard. The caller has already set the
    /// stop flag and poked the listener; shards run their graceful drain
    /// (flush pending replies, then close) before exiting.
    pub(crate) fn shutdown(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for inbox in &self.inboxes {
            let _ = inbox.waker.wake();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }
}

/// One shard thread's whole world.
struct Shard {
    poller: Poller,
    wake_rx: poll_net::WakeReceiver,
    inbox: Arc<Inbox>,
    /// The connection slab; `Token(slot + 1)` addresses `conns[slot]`.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    wheel: Option<IdleWheel>,
    store: Arc<KvStore>,
    counters: Arc<ServerCounters>,
    telemetry: Arc<Telemetry>,
    /// This shard's open-connections gauge (`stm_kv_shard_conns`).
    conns_gauge: Arc<metrics::Gauge>,
    durable: Option<Arc<Durable>>,
    stop: Arc<AtomicBool>,
}

impl Shard {
    fn run(&mut self, ctx: &mut ThreadCtx<'_>) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let tick = match &self.wheel {
                Some(wheel) => wheel.granularity.min(SHARD_TICK),
                None => SHARD_TICK,
            };
            let wait_started = Instant::now();
            if self.poller.wait(&mut events, EVENT_BATCH, Some(tick)).is_err() {
                // A failed wait is unrecoverable for this shard; drain what
                // we have and exit rather than spin on the error.
                self.drain_all(ctx);
                return;
            }
            self.telemetry.note_poll_wait(elapsed_us(wait_started));
            self.telemetry.note_ready_batch(events.len() as u64);
            // Slots closed while handling an earlier event in this batch
            // are skipped (the slab entry is `None`); slots are never
            // *reused* within a batch because accepts only run after it.
            let batch: Vec<Event> = events.clone();
            for event in &batch {
                if event.token == WAKER_TOKEN {
                    self.wake_rx.drain();
                    continue;
                }
                self.handle_event(ctx, event);
            }
            self.accept_pending(ctx);
            self.reap_idle();
            if self.stop.load(Ordering::Relaxed) {
                self.drain_all(ctx);
                return;
            }
        }
    }

    /// Registers every connection the acceptor handed over since the last
    /// wake, then serves whatever those sockets already carry.
    fn accept_pending(&mut self, ctx: &mut ThreadCtx<'_>) {
        loop {
            let Some(stream) = self.inbox.pending.lock().pop_front() else {
                return;
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let slot = match self.free.pop() {
                Some(slot) => slot,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            self.next_gen += 1;
            let conn = Conn {
                stream,
                state: ConnState::new(),
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                out_pos: 0,
                want_write: false,
                peer_eof: false,
                last_active: Instant::now(),
                gen: self.next_gen,
            };
            if self
                .poller
                .register(&conn.stream, Token(slot + 1), Interest::READABLE, Trigger::Level)
                .is_err()
            {
                self.free.push(slot);
                continue;
            }
            self.counters.conns_open.fetch_add(1, Ordering::Relaxed);
            self.conns_gauge.add(1);
            if let Some(wheel) = &mut self.wheel {
                wheel.touch(slot, conn.gen);
            }
            self.conns[slot] = Some(conn);
            // A pipelining client may have sent its burst before the
            // registration existed; a level-triggered poller would catch it
            // on the next wait, but serving it now saves that round trip.
            self.service_read(ctx, slot);
        }
    }

    fn handle_event(&mut self, ctx: &mut ThreadCtx<'_>, event: &Event) {
        let slot = event.token.0 - 1;
        if self.conns.get(slot).is_none_or(Option::is_none) {
            return; // closed earlier in this batch
        }
        if event.writable {
            self.service_write(slot);
        }
        if event.readable && self.conns[slot].is_some() {
            self.service_read(ctx, slot);
        }
    }

    /// Reads everything available, executes every complete request through
    /// the shared core, and flushes the replies (parking the tail behind
    /// write-readiness when the socket fills).
    fn service_read(&mut self, ctx: &mut ThreadCtx<'_>, slot: usize) {
        let mut close_now = false;
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        break;
                    }
                    Ok(n) => conn.inbuf.extend_from_slice(&chunk[..n]),
                    Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close_now = true;
                        break;
                    }
                }
            }
            conn.last_active = Instant::now();
            let gen = conn.gen;
            if let Some(wheel) = &mut self.wheel {
                wheel.touch(slot, gen);
            }
        }
        if close_now {
            self.close(slot);
            return;
        }
        self.process_and_flush(ctx, slot);
    }

    /// Runs the shared request core over the connection's input buffer and
    /// flushes what it produced. Split from [`Shard::service_read`] so the
    /// shutdown drain can reuse it.
    fn process_and_flush(&mut self, ctx: &mut ThreadCtx<'_>, slot: usize) {
        let mut out = Vec::new();
        let barrier = {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            process_buffered(
                &mut conn.state,
                ctx,
                &self.store,
                &self.counters,
                &self.telemetry,
                self.durable.as_deref(),
                &mut conn.inbuf,
                &mut out,
            )
        };
        // Group commit: the shard blocks here exactly like a pool worker
        // would — one fsync covers every burst that committed meanwhile.
        if let (Some(durable), Some(barrier)) = (self.durable.as_deref(), barrier) {
            if !durable.wal.wait_durable(barrier) {
                self.close(slot);
                return;
            }
        }
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.outbuf.extend_from_slice(&out);
        }
        self.service_write(slot);
    }

    /// Pushes the unflushed reply tail into the socket. On `WouldBlock` the
    /// remainder waits for write-readiness; once everything is out the
    /// write interest is dropped again and a finished (`QUIT`/EOF)
    /// connection closes.
    fn service_write(&mut self, slot: usize) {
        let mut close_now = false;
        'flush: {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            while conn.pending_out() {
                match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
                    Ok(0) => {
                        close_now = true;
                        break 'flush;
                    }
                    Ok(n) => conn.out_pos += n,
                    Err(err) if err.kind() == ErrorKind::WouldBlock => {
                        if !conn.want_write {
                            conn.want_write = true;
                            self.counters.partial_writes.fetch_add(1, Ordering::Relaxed);
                            let _ = self.poller.reregister(
                                &conn.stream,
                                Token(slot + 1),
                                Interest::BOTH,
                                Trigger::Level,
                            );
                        }
                        return;
                    }
                    Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close_now = true;
                        break 'flush;
                    }
                }
            }
            conn.outbuf.clear();
            conn.out_pos = 0;
            if conn.want_write {
                conn.want_write = false;
                let _ = self.poller.reregister(
                    &conn.stream,
                    Token(slot + 1),
                    Interest::READABLE,
                    Trigger::Level,
                );
            }
            if conn.state.quit() || conn.peer_eof {
                close_now = true;
            }
        }
        if close_now {
            self.close(slot);
        }
    }

    /// Checks the wheel's due candidates against live state and reaps the
    /// genuinely idle ones.
    fn reap_idle(&mut self) {
        let now = Instant::now();
        let (due, timeout) = match &mut self.wheel {
            Some(wheel) => (wheel.expired(now), wheel.timeout),
            None => return,
        };
        for (slot, gen) in due {
            let reap = match self.conns.get(slot) {
                // Generation mismatch = a different connection reused the
                // slot; its own wheel entry covers it.
                Some(Some(conn)) if conn.gen == gen => {
                    now.duration_since(conn.last_active) >= timeout
                }
                _ => continue,
            };
            if reap {
                self.counters.conns_reaped_idle.fetch_add(1, Ordering::Relaxed);
                self.close(slot);
            } else if let Some(wheel) = &mut self.wheel {
                // Still fresh: check again one timeout later.
                wheel.touch(slot, gen);
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.deregister(&conn.stream);
            self.counters.conns_open.fetch_sub(1, Ordering::Relaxed);
            self.conns_gauge.sub(1);
            self.free.push(slot);
        }
    }

    /// Graceful drain at shutdown: for every connection (including ones
    /// still in the inbox), read what the peer already sent, execute it,
    /// flush every pending reply — retrying a full socket briefly — and
    /// close. No in-flight pipelined burst loses its replies.
    fn drain_all(&mut self, ctx: &mut ThreadCtx<'_>) {
        let drain_started = Instant::now();
        // Late hand-offs first: accepted before the stop flag landed.
        while let Some(stream) = self.inbox.pending.lock().pop_front() {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let slot = match self.free.pop() {
                Some(slot) => slot,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            self.next_gen += 1;
            self.counters.conns_open.fetch_add(1, Ordering::Relaxed);
            self.conns_gauge.add(1);
            self.conns[slot] = Some(Conn {
                stream,
                state: ConnState::new(),
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                out_pos: 0,
                want_write: false,
                peer_eof: false,
                last_active: Instant::now(),
                gen: self.next_gen,
            });
        }
        for slot in 0..self.conns.len() {
            let mut out = Vec::new();
            let barrier = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                // One final read pass over what the kernel already buffered.
                let mut chunk = [0u8; READ_CHUNK];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(n) if n > 0 => conn.inbuf.extend_from_slice(&chunk[..n]),
                        Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                        _ => break,
                    }
                }
                process_buffered(
                    &mut conn.state,
                    ctx,
                    &self.store,
                    &self.counters,
                    &self.telemetry,
                    self.durable.as_deref(),
                    &mut conn.inbuf,
                    &mut out,
                )
            };
            if let (Some(durable), Some(barrier)) = (self.durable.as_deref(), barrier) {
                if !durable.wal.wait_durable(barrier) {
                    self.close(slot);
                    continue;
                }
            }
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.outbuf.extend_from_slice(&out);
                // Bounded blocking flush: the poller is done, so retry a
                // full socket with short sleeps instead of write-readiness.
                let deadline = Instant::now() + DRAIN_FLUSH_BUDGET;
                while conn.pending_out() && Instant::now() < deadline {
                    match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
                        Ok(0) => break,
                        Ok(n) => conn.out_pos += n,
                        Err(err) if err.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(err) if err.kind() == ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                }
                let _ = conn.stream.flush();
            }
            self.close(slot);
        }
        self.telemetry.note_drain(elapsed_us(drain_started));
    }
}
