//! The wire protocol: two negotiated framings over one request/reply model.
//!
//! Every connection starts in **protocol v1**: one `\n`-terminated line of
//! ASCII text per request and per reply, driveable from `nc` — exactly the
//! protocol the service has always spoken, so old clients keep working
//! unchanged. The v1 grammar:
//!
//! | Request | Reply |
//! |---------|-------|
//! | `HELLO <version>` | `HELLO <version>` (switches framing) or `ERR ...` |
//! | `GET <key>` | `VALUE <v>` or `NIL` |
//! | `PUT <key> <value>` | `OK` |
//! | `DEL <key>` | `OK 1` (removed) or `OK 0` |
//! | `ADD <key> <delta>` | `VALUE <new>` (absent keys start at 0) |
//! | `RANGE <lo> <hi>` | `RANGE <n> k1=v1 k2=v2 ...` |
//! | `SUM <lo> <hi>` | `SUM <total> <count>` |
//! | `BEGIN` | `OK`; subsequent data ops reply `QUEUED` |
//! | `EXEC` | `EXEC <n>` followed by the `n` queued replies, one per line |
//! | `PING` | `PONG` |
//! | `STATS` | `STATS <key>=<value> ...` |
//! | `METRICS` | `METRICS <n>` followed by `n` exposition lines |
//! | `SLOWLOG <n>` | `SLOWLOG <m>` followed by `m` entry lines |
//! | `SNAPSHOT` | `SNAPSHOT <seq> <keys>` (durable servers only) |
//! | `WALSTATS` | `WALSTATS <key>=<value> ...` (durable servers only) |
//! | `QUIT` | `BYE`, then the connection closes |
//!
//! v1 is **integer-only**: `PUT` parses its value as an `i64`, and a reply
//! that would have to carry a `Str`/`Bytes` value (stored by a v2 client)
//! degrades to an `ERR` naming the kind — a line protocol cannot frame a
//! value containing `\n`. Inside a v1 `RANGE` reply, non-integer values
//! render as `<str>`/`<bytes>` placeholders.
//!
//! `HELLO 2` switches the connection to **protocol v2**: binary-safe,
//! length-prefixed, RESP-style frames that carry the typed [`Value`] enum
//! (`Int` / `Str` / `Bytes`) byte-exactly — newlines, NULs and multi-byte
//! UTF-8 included. One frame is:
//!
//! ```text
//! frame  = int | str | blob | status | error | nil | array
//! int    = ':' <decimal i64> '\n'            — Value::Int
//! str    = '$' <len> '\n' <len bytes> '\n'   — Value::Str (UTF-8 checked)
//! blob   = '=' <len> '\n' <len bytes> '\n'   — Value::Bytes
//! status = '+' <token> [' ' <text>] '\n'     — OK, PONG, QUEUED, ...
//! error  = '-' <CODE> ' ' <message> '\n'     — coded failure
//! nil    = '_' '\n'                          — absent key
//! array  = '*' <count> '\n' <count frames>   — requests, RANGE, EXEC
//! ```
//!
//! A v2 **request** is one array frame: `[+VERB, arg frames...]` — keys and
//! deltas are int frames, a `PUT` value is any value frame. A v2 **reply**
//! maps the same [`Reply`] model: scalar values are bare value frames, `NIL`
//! is the nil frame, structured replies are arrays tagged by a leading
//! status (`[+SUM, :total, :count]`, `[+RANGE, [[:k, value], ...]]`,
//! `[+EXEC, [reply frames...]]`), and failures are error frames whose code
//! is machine-readable ([`ErrorCode`]).
//!
//! Any failure — unknown verb, malformed frame, type mismatch, transaction
//! failure — is reported as an error reply and leaves the connection usable
//! (only an unparseable v2 frame closes it: there is no way to resynchronise
//! a length-prefixed stream). A failure while a batch is open poisons the
//! batch (the client must re-issue `BEGIN`). Requests may be **pipelined**:
//! the server parses every complete request it has buffered before replying,
//! executes them in order, and writes all the replies back in one flush.
//!
//! Both directions of both framings are implemented here, so a single test
//! suite pins the grammar from all four sides.

use crate::Value;

/// Highest protocol version this build speaks.
pub const MAX_PROTOCOL_VERSION: u32 = 2;

/// Which framing a connection currently speaks (switched by `HELLO`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtoVersion {
    /// Line-based text framing, integer values only (the default).
    #[default]
    V1,
    /// Binary-safe length-prefixed frames carrying typed values.
    V2,
}

impl ProtoVersion {
    /// The numeric version carried by `HELLO`.
    pub fn number(&self) -> u32 {
        match self {
            ProtoVersion::V1 => 1,
            ProtoVersion::V2 => 2,
        }
    }
}

/// Upper bound on one v2 bulk payload (`$`/`=` frames) — a framing sanity
/// check so a corrupted length cannot make a peer allocate gigabytes.
pub const MAX_BULK_BYTES: usize = 64 << 20;

/// Upper bound on one v2 array's element count.
pub const MAX_ARRAY_LEN: usize = 1 << 20;

/// Upper bound on one v2 frame header line (everything before the first
/// `\n`). Error frames carry their whole message in the header, so this
/// must comfortably exceed any message the server emits; [`write_error`]
/// truncates to stay under it.
pub const MAX_HEADER_BYTES: usize = 1024;

/// Machine-readable category of a protocol error — the `CODE` token of a v2
/// error frame, classified heuristically from the message text in v1 (which
/// predates codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// Framing or grammar violation: unknown verb, malformed frame.
    Proto,
    /// A well-formed request with bad arguments (arity, non-integer key).
    Arg,
    /// An arithmetic op hit a non-integer value (`ADD`/`SUM` on a str).
    Type,
    /// Batch protocol misuse: `EXEC` without `BEGIN`, poisoned batch.
    Batch,
    /// The server-side transaction failed (retry limit, explicit abort).
    Txn,
    /// Durability subsystem: disabled, snapshot in progress, write failure.
    Wal,
    /// Anything that fits no other category.
    Unknown,
}

impl ErrorCode {
    /// The stable wire token of this code (the `-CODE` of a v2 error frame).
    pub fn token(&self) -> &'static str {
        match self {
            ErrorCode::Proto => "PROTO",
            ErrorCode::Arg => "ARG",
            ErrorCode::Type => "TYPE",
            ErrorCode::Batch => "BATCH",
            ErrorCode::Txn => "TXN",
            ErrorCode::Wal => "WAL",
            ErrorCode::Unknown => "ERR",
        }
    }

    /// Parses a wire token back to its code.
    pub fn from_token(token: &str) -> ErrorCode {
        match token {
            "PROTO" => ErrorCode::Proto,
            "ARG" => ErrorCode::Arg,
            "TYPE" => ErrorCode::Type,
            "BATCH" => ErrorCode::Batch,
            "TXN" => ErrorCode::Txn,
            "WAL" => ErrorCode::Wal,
            _ => ErrorCode::Unknown,
        }
    }

    /// Best-effort classification of a v1 `ERR` message (v1 predates coded
    /// errors, so the client infers the category from the text).
    pub fn classify_v1(message: &str) -> ErrorCode {
        let m = message;
        // Order matters: the server's compound messages must classify by
        // their most specific marker — "batch failed: transaction ..." is a
        // transaction failure (Txn), not batch misuse, and "snapshot
        // transaction failed" is a durability failure (Wal).
        if m.contains("int-only") || m.contains("not an int") || m.contains("holds a") {
            ErrorCode::Type
        } else if m.contains("durability") || m.contains("snapshot") {
            ErrorCode::Wal
        } else if m.contains("transaction") {
            ErrorCode::Txn
        } else if m.contains("batch") || m.contains("EXEC without BEGIN") {
            ErrorCode::Batch
        } else if m.contains("takes") || m.contains("must be an integer") {
            ErrorCode::Arg
        } else if m.contains("unknown command") || m.contains("protocol") || m.contains("command")
        {
            ErrorCode::Proto
        } else {
            ErrorCode::Unknown
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// A coded protocol-level failure (the payload of [`Reply::Err`], and what
/// request parsing reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl ProtoError {
    /// Shorthand constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Negotiate the protocol version for the rest of the connection.
    Hello(u32),
    /// Read one key.
    Get(i64),
    /// Store a value (creating or overwriting the key).
    Put(i64, Value),
    /// Remove a key.
    Del(i64),
    /// Add a delta to a key's integer value (absent keys start at 0).
    Add(i64, i64),
    /// The present keys in `lo..=hi` with their values.
    Range(i64, i64),
    /// Atomic sum + count of the integer values in `lo..=hi`.
    Sum(i64, i64),
    /// Open a batch: queue data operations until `EXEC`.
    Begin,
    /// Execute the queued batch as one atomic transaction.
    Exec,
    /// Liveness probe.
    Ping,
    /// Server statistics.
    Stats,
    /// Full telemetry exposition (Prometheus-style text).
    Metrics,
    /// The `n` slowest requests the server has retained, newest analysis
    /// of each: op, attempts, abort causes, manager verdicts, timings.
    SlowLog(u64),
    /// Force a point-in-time snapshot of the keyspace (durable servers).
    Snapshot,
    /// Write-ahead-log statistics (durable servers).
    WalStats,
    /// Close the connection.
    Quit,
}

impl Request {
    /// Whether this request is a data operation that may appear inside a
    /// `BEGIN`/`EXEC` batch.
    pub fn is_data_op(&self) -> bool {
        matches!(
            self,
            Request::Get(_)
                | Request::Put(..)
                | Request::Del(_)
                | Request::Add(..)
                | Request::Range(..)
                | Request::Sum(..)
        )
    }
}

/// A server reply to one request (or one queued batch operation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A typed value (`GET` hit, `ADD` result).
    Value(Value),
    /// Key absent.
    Nil,
    /// Success without a payload (`PUT`, `BEGIN`).
    Ok,
    /// Success with a small integer payload (`DEL` → removed count).
    OkN(i64),
    /// Key/value pairs from a `RANGE`.
    Range(Vec<(i64, Value)>),
    /// Sum and count from a `SUM`.
    Sum(i64, usize),
    /// Operation queued inside an open batch.
    Queued,
    /// The replies of an executed `BEGIN`/`EXEC` batch, one per queued op.
    Exec(Vec<Reply>),
    /// A snapshot was written: its cut sequence number and key count.
    Snapshot(u64, usize),
    /// Protocol version the connection now speaks (reply to `HELLO`).
    Hello(u32),
    /// The `STATS` counter payload (`key=value` pairs, space-separated).
    Stats(String),
    /// The full `METRICS` exposition (Prometheus-style text, one series
    /// sample per line).
    Metrics(String),
    /// The `SLOWLOG` entries, one rendered `key=value ...` line each,
    /// slowest first.
    SlowLog(Vec<String>),
    /// The `WALSTATS` counter payload (durable servers).
    WalStats(String),
    /// Reply to `PING`.
    Pong,
    /// Connection closing.
    Bye,
    /// Failure, with a machine-readable code.
    Err(ErrorCode, String),
}

impl Reply {
    /// Shorthand for an error reply.
    pub fn err(code: ErrorCode, message: impl Into<String>) -> Reply {
        Reply::Err(code, message.into())
    }
}

fn parse_int(token: &str, what: &str) -> Result<i64, ProtoError> {
    token.parse::<i64>().map_err(|_| {
        ProtoError::new(
            ErrorCode::Arg,
            format!("{what} must be an integer, got '{token}'"),
        )
    })
}

// ---------------------------------------------------------------------------
// Protocol v1: one text line per request/reply.
// ---------------------------------------------------------------------------

/// Parses one v1 request line (without its trailing newline).
///
/// Verbs are case-insensitive; arguments are whitespace-separated signed
/// 64-bit integers (v1 cannot express `Str`/`Bytes` values — that is what
/// `HELLO 2` is for).
///
/// # Errors
///
/// Returns a coded, human-readable error (sent back as `ERR <message>`) for
/// an unknown verb or a malformed argument list.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens
        .next()
        .ok_or_else(|| ProtoError::new(ErrorCode::Proto, "empty request"))?;
    let args: Vec<&str> = tokens.collect();
    let arity = |n: usize| -> Result<(), ProtoError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(ProtoError::new(
                ErrorCode::Arg,
                format!(
                    "{} takes {} argument{}, got {}",
                    verb.to_ascii_uppercase(),
                    n,
                    if n == 1 { "" } else { "s" },
                    args.len()
                ),
            ))
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "HELLO" => {
            arity(1)?;
            let version = args[0].parse::<u32>().map_err(|_| {
                ProtoError::new(
                    ErrorCode::Arg,
                    format!("protocol version must be a number, got '{}'", args[0]),
                )
            })?;
            Ok(Request::Hello(version))
        }
        "GET" => {
            arity(1)?;
            Ok(Request::Get(parse_int(args[0], "key")?))
        }
        "PUT" => {
            arity(2)?;
            Ok(Request::Put(
                parse_int(args[0], "key")?,
                Value::Int(parse_int(args[1], "value")?),
            ))
        }
        "DEL" => {
            arity(1)?;
            Ok(Request::Del(parse_int(args[0], "key")?))
        }
        "ADD" => {
            arity(2)?;
            Ok(Request::Add(
                parse_int(args[0], "key")?,
                parse_int(args[1], "delta")?,
            ))
        }
        "RANGE" => {
            arity(2)?;
            Ok(Request::Range(
                parse_int(args[0], "lo")?,
                parse_int(args[1], "hi")?,
            ))
        }
        "SUM" => {
            arity(2)?;
            Ok(Request::Sum(
                parse_int(args[0], "lo")?,
                parse_int(args[1], "hi")?,
            ))
        }
        "METRICS" => {
            arity(0)?;
            Ok(Request::Metrics)
        }
        "SLOWLOG" => {
            arity(1)?;
            let n = parse_int(args[0], "entry count")?;
            u64::try_from(n)
                .map(Request::SlowLog)
                .map_err(|_| ProtoError::new(ErrorCode::Arg, "entry count must be non-negative"))
        }
        "BEGIN" => {
            arity(0)?;
            Ok(Request::Begin)
        }
        "EXEC" => {
            arity(0)?;
            Ok(Request::Exec)
        }
        "PING" => {
            arity(0)?;
            Ok(Request::Ping)
        }
        "STATS" => {
            arity(0)?;
            Ok(Request::Stats)
        }
        "SNAPSHOT" => {
            arity(0)?;
            Ok(Request::Snapshot)
        }
        "WALSTATS" => {
            arity(0)?;
            Ok(Request::WalStats)
        }
        "QUIT" => {
            arity(0)?;
            Ok(Request::Quit)
        }
        other => Err(ProtoError::new(
            ErrorCode::Proto,
            format!("unknown command '{other}'"),
        )),
    }
}

/// Renders a request as its v1 wire line (without the trailing newline).
///
/// v1 cannot carry `Str`/`Bytes` values; a typed `PUT` renders a
/// `<str>`/`<bytes>` placeholder the server will reject — [`KvClient`]
/// refuses such a request before it reaches the wire.
///
/// [`KvClient`]: crate::KvClient
pub fn render_request(request: &Request) -> String {
    match request {
        Request::Hello(version) => format!("HELLO {version}"),
        Request::Get(k) => format!("GET {k}"),
        Request::Put(k, Value::Int(v)) => format!("PUT {k} {v}"),
        Request::Put(k, v) => format!("PUT {k} <{}>", v.type_name()),
        Request::Del(k) => format!("DEL {k}"),
        Request::Add(k, d) => format!("ADD {k} {d}"),
        Request::Range(lo, hi) => format!("RANGE {lo} {hi}"),
        Request::Sum(lo, hi) => format!("SUM {lo} {hi}"),
        Request::Begin => "BEGIN".to_string(),
        Request::Exec => "EXEC".to_string(),
        Request::Ping => "PING".to_string(),
        Request::Stats => "STATS".to_string(),
        Request::Metrics => "METRICS".to_string(),
        Request::SlowLog(n) => format!("SLOWLOG {n}"),
        Request::Snapshot => "SNAPSHOT".to_string(),
        Request::WalStats => "WALSTATS".to_string(),
        Request::Quit => "QUIT".to_string(),
    }
}

/// Renders a reply as its v1 wire text (without the trailing newline; the
/// `EXEC` reply renders as its header line plus one embedded line per op).
///
/// A `Str`/`Bytes` scalar value degrades to a `TYPE` error line and a
/// non-integer `RANGE` value to a `<str>`/`<bytes>` placeholder: a line
/// protocol cannot frame arbitrary bytes — v2 exists for that.
pub fn render_reply(reply: &Reply) -> String {
    match reply {
        Reply::Value(Value::Int(v)) => format!("VALUE {v}"),
        Reply::Value(other) => format!(
            "ERR value is {}; the v1 protocol is int-only (negotiate with HELLO 2)",
            other.type_name()
        ),
        Reply::Nil => "NIL".to_string(),
        Reply::Ok => "OK".to_string(),
        Reply::OkN(n) => format!("OK {n}"),
        Reply::Range(pairs) => {
            let mut out = format!("RANGE {}", pairs.len());
            for (k, v) in pairs {
                match v {
                    Value::Int(v) => out.push_str(&format!(" {k}={v}")),
                    other => out.push_str(&format!(" {k}=<{}>", other.type_name())),
                }
            }
            out
        }
        Reply::Sum(total, count) => format!("SUM {total} {count}"),
        Reply::Queued => "QUEUED".to_string(),
        Reply::Exec(replies) => {
            let mut out = format!("EXEC {}", replies.len());
            for reply in replies {
                out.push('\n');
                out.push_str(&render_reply(reply));
            }
            out
        }
        Reply::Snapshot(seq, keys) => format!("SNAPSHOT {seq} {keys}"),
        Reply::Hello(version) => format!("HELLO {version}"),
        Reply::Stats(payload) => format!("STATS {payload}"),
        Reply::Metrics(text) => {
            // Like EXEC: a header announcing the line count, then the
            // exposition lines — the one multi-line v1 shape, assembled
            // back together by the client rather than parse_reply.
            let lines: Vec<&str> = text.lines().collect();
            let mut out = format!("METRICS {}", lines.len());
            for line in lines {
                out.push('\n');
                out.push_str(line);
            }
            out
        }
        Reply::SlowLog(entries) => {
            let mut out = format!("SLOWLOG {}", entries.len());
            for entry in entries {
                out.push('\n');
                out.push_str(&entry.replace('\n', " "));
            }
            out
        }
        Reply::WalStats(payload) => format!("WALSTATS {payload}"),
        Reply::Pong => "PONG".to_string(),
        Reply::Bye => "BYE".to_string(),
        Reply::Err(_, message) => format!("ERR {}", message.replace('\n', " ")),
    }
}

/// Parses one v1 reply line (without its trailing newline) — the client
/// side of [`render_reply`]. The multi-line `EXEC` reply is assembled by
/// the client from its header plus per-op lines, not parsed here.
///
/// # Errors
///
/// Returns a message describing the framing violation when the line does
/// not match the reply grammar.
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let line = line.trim_end();
    if let Some(message) = line.strip_prefix("ERR ") {
        return Ok(Reply::Err(ErrorCode::classify_v1(message), message.to_string()));
    }
    if let Some(payload) = line.strip_prefix("STATS ") {
        return Ok(Reply::Stats(payload.to_string()));
    }
    if let Some(payload) = line.strip_prefix("WALSTATS ") {
        return Ok(Reply::WalStats(payload.to_string()));
    }
    let mut tokens = line.split_whitespace();
    let head = tokens.next().ok_or_else(|| "empty reply".to_string())?;
    let rest: Vec<&str> = tokens.collect();
    let plain_int = |token: &str, what: &str| -> Result<i64, String> {
        token
            .parse::<i64>()
            .map_err(|_| format!("{what} must be an integer, got '{token}'"))
    };
    match head {
        "VALUE" if rest.len() == 1 => Ok(Reply::Value(Value::Int(plain_int(rest[0], "value")?))),
        "NIL" if rest.is_empty() => Ok(Reply::Nil),
        "OK" if rest.is_empty() => Ok(Reply::Ok),
        "OK" if rest.len() == 1 => Ok(Reply::OkN(plain_int(rest[0], "count")?)),
        "RANGE" if !rest.is_empty() => {
            let n = plain_int(rest[0], "pair count")? as usize;
            if rest.len() != n + 1 {
                return Err(format!("RANGE announced {n} pairs, carried {}", rest.len() - 1));
            }
            let mut pairs = Vec::with_capacity(n);
            for pair in &rest[1..] {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("malformed pair '{pair}'"))?;
                pairs.push((plain_int(k, "key")?, Value::Int(plain_int(v, "value")?)));
            }
            Ok(Reply::Range(pairs))
        }
        "SUM" if rest.len() == 2 => Ok(Reply::Sum(
            plain_int(rest[0], "total")?,
            plain_int(rest[1], "count")? as usize,
        )),
        "QUEUED" if rest.is_empty() => Ok(Reply::Queued),
        "SNAPSHOT" if rest.len() == 2 => Ok(Reply::Snapshot(
            rest[0]
                .parse::<u64>()
                .map_err(|_| format!("malformed snapshot seq '{}'", rest[0]))?,
            plain_int(rest[1], "key count")? as usize,
        )),
        "HELLO" if rest.len() == 1 => Ok(Reply::Hello(
            rest[0]
                .parse::<u32>()
                .map_err(|_| format!("malformed protocol version '{}'", rest[0]))?,
        )),
        "PONG" if rest.is_empty() => Ok(Reply::Pong),
        "BYE" if rest.is_empty() => Ok(Reply::Bye),
        "STATS" if rest.is_empty() => Ok(Reply::Stats(String::new())),
        "WALSTATS" if rest.is_empty() => Ok(Reply::WalStats(String::new())),
        "ERR" => Ok(Reply::Err(ErrorCode::Unknown, String::new())),
        _ => Err(format!("unrecognized reply '{line}'")),
    }
}

// ---------------------------------------------------------------------------
// Protocol v2: binary-safe, length-prefixed frames.
// ---------------------------------------------------------------------------

/// One decoded v2 frame — the unit both requests and replies are built
/// from. See the [module documentation](self) for the byte grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// `:<i64>` — an integer value.
    Int(i64),
    /// `$<len>` + bytes — a UTF-8 string value.
    Str(String),
    /// `=<len>` + bytes — an opaque blob value.
    Bytes(Vec<u8>),
    /// `+<token...>` — a status word (`OK`, `PONG`, reply tags).
    Status(String),
    /// `-<CODE> <message>` — a coded failure.
    Error(ErrorCode, String),
    /// `_` — absent.
    Nil,
    /// `*<count>` + frames — a sequence.
    Array(Vec<Frame>),
}

impl Frame {
    fn describe(&self) -> &'static str {
        match self {
            Frame::Int(_) => "int",
            Frame::Str(_) => "str",
            Frame::Bytes(_) => "bytes",
            Frame::Status(_) => "status",
            Frame::Error(..) => "error",
            Frame::Nil => "nil",
            Frame::Array(_) => "array",
        }
    }
}

/// Why [`decode_frame`] returned no frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends mid-frame — read more bytes and retry.
    Incomplete,
    /// The bytes violate the frame grammar; the stream cannot be resynced.
    Malformed(String),
}

fn malformed(message: impl Into<String>) -> FrameError {
    FrameError::Malformed(message.into())
}

/// Appends a length-prefixed bulk frame (`$`/`=`).
fn write_bulk(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(payload.len().to_string().as_bytes());
    out.push(b'\n');
    out.extend_from_slice(payload);
    out.push(b'\n');
}

/// Appends a value as its v2 frame.
pub fn write_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Int(v) => {
            out.push(b':');
            out.extend_from_slice(v.to_string().as_bytes());
            out.push(b'\n');
        }
        Value::Str(s) => write_bulk(out, b'$', s.as_bytes()),
        Value::Bytes(b) => write_bulk(out, b'=', b),
    }
}

fn write_int(out: &mut Vec<u8>, v: i64) {
    write_value(out, &Value::Int(v));
}

fn write_status(out: &mut Vec<u8>, token: &str) {
    out.push(b'+');
    out.extend_from_slice(token.as_bytes());
    out.push(b'\n');
}

fn write_error(out: &mut Vec<u8>, code: ErrorCode, message: &str) {
    out.push(b'-');
    out.extend_from_slice(code.token().as_bytes());
    out.push(b' ');
    // The whole error frame is one header line; keep it under the decoder's
    // header cap (truncating on a char boundary) so a fragmented error
    // reply can never misread as malformed.
    let flat = message.replace('\n', " ");
    let mut cut = flat.len().min(MAX_HEADER_BYTES - 64);
    while !flat.is_char_boundary(cut) {
        cut -= 1;
    }
    out.extend_from_slice(&flat.as_bytes()[..cut]);
    out.push(b'\n');
}

fn write_array_header(out: &mut Vec<u8>, len: usize) {
    out.push(b'*');
    out.extend_from_slice(len.to_string().as_bytes());
    out.push(b'\n');
}

/// Appends an arbitrary frame (used by tests and the client's batch path).
pub fn write_frame(out: &mut Vec<u8>, frame: &Frame) {
    match frame {
        Frame::Int(v) => write_int(out, *v),
        Frame::Str(s) => write_bulk(out, b'$', s.as_bytes()),
        Frame::Bytes(b) => write_bulk(out, b'=', b),
        Frame::Status(token) => write_status(out, token),
        Frame::Error(code, message) => write_error(out, *code, message),
        Frame::Nil => out.extend_from_slice(b"_\n"),
        Frame::Array(frames) => {
            write_array_header(out, frames.len());
            for frame in frames {
                write_frame(out, frame);
            }
        }
    }
}

/// Decodes the frame at the head of `buf`, returning it with the number of
/// bytes it occupied.
///
/// # Errors
///
/// [`FrameError::Incomplete`] when `buf` ends mid-frame (read more and
/// retry — the pipelining contract), [`FrameError::Malformed`] when the
/// bytes violate the grammar (the connection must close: a length-prefixed
/// stream cannot be resynchronised).
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    decode_frame_at_depth(buf, 0)
}

fn decode_frame_at_depth(buf: &[u8], depth: usize) -> Result<(Frame, usize), FrameError> {
    if depth > 8 {
        return Err(malformed("frame nesting too deep"));
    }
    let Some(&tag) = buf.first() else {
        return Err(FrameError::Incomplete);
    };
    let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
        // Unbounded header lines would let a peer that never sends '\n'
        // grow the buffer forever. The cap must exceed every header a
        // well-behaved peer emits (write_error truncates to guarantee it),
        // or a partially-received long reply would misread as malformed.
        return if buf.len() > MAX_HEADER_BYTES {
            Err(malformed("frame header too long"))
        } else {
            Err(FrameError::Incomplete)
        };
    };
    let header = std::str::from_utf8(&buf[1..nl])
        .map_err(|_| malformed("frame header is not UTF-8"))?;
    let after_header = nl + 1;
    match tag {
        b':' => {
            let v = header
                .parse::<i64>()
                .map_err(|_| malformed(format!("malformed int frame ':{header}'")))?;
            Ok((Frame::Int(v), after_header))
        }
        b'$' | b'=' => {
            let len = header
                .parse::<usize>()
                .map_err(|_| malformed(format!("malformed bulk length '{header}'")))?;
            if len > MAX_BULK_BYTES {
                return Err(malformed(format!("bulk frame of {len} bytes exceeds the limit")));
            }
            let end = after_header + len;
            let Some(payload) = buf.get(after_header..end) else {
                return Err(FrameError::Incomplete);
            };
            match buf.get(end) {
                None => return Err(FrameError::Incomplete),
                Some(b'\n') => {}
                Some(_) => return Err(malformed("bulk frame missing trailing newline")),
            }
            let frame = if tag == b'$' {
                Frame::Str(
                    std::str::from_utf8(payload)
                        .map_err(|_| malformed("str frame is not valid UTF-8"))?
                        .to_string(),
                )
            } else {
                Frame::Bytes(payload.to_vec())
            };
            Ok((frame, end + 1))
        }
        b'+' => {
            if header.is_empty() {
                return Err(malformed("empty status frame"));
            }
            Ok((Frame::Status(header.to_string()), after_header))
        }
        b'-' => {
            let (code, message) = match header.split_once(' ') {
                Some((token, message)) => (ErrorCode::from_token(token), message.to_string()),
                None => (ErrorCode::from_token(header), String::new()),
            };
            Ok((Frame::Error(code, message), after_header))
        }
        b'_' => {
            if !header.is_empty() {
                return Err(malformed("nil frame carries payload"));
            }
            Ok((Frame::Nil, after_header))
        }
        b'*' => {
            let count = header
                .parse::<usize>()
                .map_err(|_| malformed(format!("malformed array length '{header}'")))?;
            if count > MAX_ARRAY_LEN {
                return Err(malformed(format!("array of {count} frames exceeds the limit")));
            }
            let mut frames = Vec::with_capacity(count.min(64));
            let mut at = after_header;
            for _ in 0..count {
                let (frame, used) = decode_frame_at_depth(&buf[at..], depth + 1)?;
                frames.push(frame);
                at += used;
            }
            Ok((Frame::Array(frames), at))
        }
        other => Err(malformed(format!(
            "unknown frame tag 0x{other:02x} (expected : $ = + - _ *)"
        ))),
    }
}

fn frame_to_value(frame: Frame) -> Option<Value> {
    match frame {
        Frame::Int(v) => Some(Value::Int(v)),
        Frame::Str(s) => Some(Value::Str(s)),
        Frame::Bytes(b) => Some(Value::Bytes(b)),
        _ => None,
    }
}

/// Renders a request as its v2 frame bytes: `[+VERB, args...]`.
pub fn render_request_v2(request: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    // PUT is the one request carrying a (possibly large) payload; write it
    // straight from the borrowed value instead of cloning into frames.
    if let Request::Put(k, v) = request {
        write_array_header(&mut out, 3);
        write_status(&mut out, "PUT");
        write_int(&mut out, *k);
        write_value(&mut out, v);
        return out;
    }
    let (verb, args): (&str, Vec<Frame>) = match request {
        Request::Hello(v) => ("HELLO", vec![Frame::Int(*v as i64)]),
        Request::Get(k) => ("GET", vec![Frame::Int(*k)]),
        Request::Put(..) => unreachable!("handled above"),
        Request::Del(k) => ("DEL", vec![Frame::Int(*k)]),
        Request::Add(k, d) => ("ADD", vec![Frame::Int(*k), Frame::Int(*d)]),
        Request::Range(lo, hi) => ("RANGE", vec![Frame::Int(*lo), Frame::Int(*hi)]),
        Request::Sum(lo, hi) => ("SUM", vec![Frame::Int(*lo), Frame::Int(*hi)]),
        Request::Begin => ("BEGIN", Vec::new()),
        Request::Exec => ("EXEC", Vec::new()),
        Request::Ping => ("PING", Vec::new()),
        Request::Stats => ("STATS", Vec::new()),
        Request::Metrics => ("METRICS", Vec::new()),
        Request::SlowLog(n) => ("SLOWLOG", vec![Frame::Int(*n as i64)]),
        Request::Snapshot => ("SNAPSHOT", Vec::new()),
        Request::WalStats => ("WALSTATS", Vec::new()),
        Request::Quit => ("QUIT", Vec::new()),
    };
    write_array_header(&mut out, 1 + args.len());
    write_status(&mut out, verb);
    for arg in &args {
        write_frame(&mut out, arg);
    }
    out
}

/// Interprets a decoded v2 frame as a request.
///
/// # Errors
///
/// A coded error describing the violation (sent back as an error frame;
/// the connection stays usable — the frame itself was well-formed).
pub fn parse_request_v2(frame: Frame) -> Result<Request, ProtoError> {
    let Frame::Array(mut frames) = frame else {
        return Err(ProtoError::new(
            ErrorCode::Proto,
            format!("request must be an array frame, got {}", frame.describe()),
        ));
    };
    if frames.is_empty() {
        return Err(ProtoError::new(ErrorCode::Proto, "empty request"));
    }
    let verb = match frames.remove(0) {
        Frame::Status(s) => s,
        Frame::Str(s) => s,
        other => {
            return Err(ProtoError::new(
                ErrorCode::Proto,
                format!("request verb must be a status/str frame, got {}", other.describe()),
            ))
        }
    };
    let args = frames;
    let arity = |n: usize| -> Result<(), ProtoError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(ProtoError::new(
                ErrorCode::Arg,
                format!(
                    "{} takes {} argument{}, got {}",
                    verb.to_ascii_uppercase(),
                    n,
                    if n == 1 { "" } else { "s" },
                    args.len()
                ),
            ))
        }
    };
    let int_arg = |i: usize, what: &str| -> Result<i64, ProtoError> {
        match &args[i] {
            Frame::Int(v) => Ok(*v),
            other => Err(ProtoError::new(
                ErrorCode::Arg,
                format!("{what} must be an int frame, got {}", other.describe()),
            )),
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "HELLO" => {
            arity(1)?;
            let v = int_arg(0, "protocol version")?;
            u32::try_from(v)
                .map(Request::Hello)
                .map_err(|_| ProtoError::new(ErrorCode::Arg, "protocol version out of range"))
        }
        "GET" => {
            arity(1)?;
            Ok(Request::Get(int_arg(0, "key")?))
        }
        "PUT" => {
            arity(2)?;
            let key = int_arg(0, "key")?;
            let mut args = args;
            let described = args[1].describe();
            let value_frame = std::mem::replace(&mut args[1], Frame::Nil);
            let value = frame_to_value(value_frame).ok_or_else(|| {
                ProtoError::new(
                    ErrorCode::Arg,
                    format!("value must be an int/str/bytes frame, got {described}"),
                )
            })?;
            Ok(Request::Put(key, value))
        }
        "DEL" => {
            arity(1)?;
            Ok(Request::Del(int_arg(0, "key")?))
        }
        "ADD" => {
            arity(2)?;
            Ok(Request::Add(int_arg(0, "key")?, int_arg(1, "delta")?))
        }
        "RANGE" => {
            arity(2)?;
            Ok(Request::Range(int_arg(0, "lo")?, int_arg(1, "hi")?))
        }
        "SUM" => {
            arity(2)?;
            Ok(Request::Sum(int_arg(0, "lo")?, int_arg(1, "hi")?))
        }
        "METRICS" => {
            arity(0)?;
            Ok(Request::Metrics)
        }
        "SLOWLOG" => {
            arity(1)?;
            let n = int_arg(0, "entry count")?;
            u64::try_from(n)
                .map(Request::SlowLog)
                .map_err(|_| ProtoError::new(ErrorCode::Arg, "entry count must be non-negative"))
        }
        "BEGIN" => {
            arity(0)?;
            Ok(Request::Begin)
        }
        "EXEC" => {
            arity(0)?;
            Ok(Request::Exec)
        }
        "PING" => {
            arity(0)?;
            Ok(Request::Ping)
        }
        "STATS" => {
            arity(0)?;
            Ok(Request::Stats)
        }
        "SNAPSHOT" => {
            arity(0)?;
            Ok(Request::Snapshot)
        }
        "WALSTATS" => {
            arity(0)?;
            Ok(Request::WalStats)
        }
        "QUIT" => {
            arity(0)?;
            Ok(Request::Quit)
        }
        other => Err(ProtoError::new(
            ErrorCode::Proto,
            format!("unknown command '{other}'"),
        )),
    }
}

/// Appends a reply as its v2 frame bytes.
pub fn render_reply_v2(out: &mut Vec<u8>, reply: &Reply) {
    match reply {
        Reply::Value(v) => write_value(out, v),
        Reply::Nil => out.extend_from_slice(b"_\n"),
        Reply::Ok => write_status(out, "OK"),
        Reply::OkN(n) => {
            write_array_header(out, 2);
            write_status(out, "OK");
            write_int(out, *n);
        }
        Reply::Range(pairs) => {
            write_array_header(out, 2);
            write_status(out, "RANGE");
            write_array_header(out, pairs.len());
            for (k, v) in pairs {
                write_array_header(out, 2);
                write_int(out, *k);
                write_value(out, v);
            }
        }
        Reply::Sum(total, count) => {
            write_array_header(out, 3);
            write_status(out, "SUM");
            write_int(out, *total);
            write_int(out, *count as i64);
        }
        Reply::Queued => write_status(out, "QUEUED"),
        Reply::Exec(replies) => {
            write_array_header(out, 2);
            write_status(out, "EXEC");
            write_array_header(out, replies.len());
            for reply in replies {
                render_reply_v2(out, reply);
            }
        }
        Reply::Snapshot(seq, keys) => {
            write_array_header(out, 3);
            write_status(out, "SNAPSHOT");
            write_int(out, *seq as i64);
            write_int(out, *keys as i64);
        }
        Reply::Hello(version) => {
            write_array_header(out, 2);
            write_status(out, "HELLO");
            write_int(out, *version as i64);
        }
        Reply::Stats(payload) => {
            write_array_header(out, 2);
            write_status(out, "STATS");
            write_value(out, &Value::Str(payload.clone()));
        }
        Reply::Metrics(text) => {
            write_array_header(out, 2);
            write_status(out, "METRICS");
            write_value(out, &Value::Str(text.clone()));
        }
        Reply::SlowLog(entries) => {
            write_array_header(out, 2);
            write_status(out, "SLOWLOG");
            write_array_header(out, entries.len());
            for entry in entries {
                write_value(out, &Value::Str(entry.clone()));
            }
        }
        Reply::WalStats(payload) => {
            write_array_header(out, 2);
            write_status(out, "WALSTATS");
            write_value(out, &Value::Str(payload.clone()));
        }
        Reply::Pong => write_status(out, "PONG"),
        Reply::Bye => write_status(out, "BYE"),
        Reply::Err(code, message) => write_error(out, *code, message),
    }
}

/// Interprets a decoded v2 frame as a reply — the client side of
/// [`render_reply_v2`].
///
/// # Errors
///
/// Returns a message describing the framing violation when the frame does
/// not match the reply grammar.
pub fn parse_reply_v2(frame: Frame) -> Result<Reply, String> {
    match frame {
        Frame::Int(v) => Ok(Reply::Value(Value::Int(v))),
        Frame::Str(s) => Ok(Reply::Value(Value::Str(s))),
        Frame::Bytes(b) => Ok(Reply::Value(Value::Bytes(b))),
        Frame::Nil => Ok(Reply::Nil),
        Frame::Error(code, message) => Ok(Reply::Err(code, message)),
        Frame::Status(token) => match token.as_str() {
            "OK" => Ok(Reply::Ok),
            "QUEUED" => Ok(Reply::Queued),
            "PONG" => Ok(Reply::Pong),
            "BYE" => Ok(Reply::Bye),
            other => Err(format!("unrecognized status reply '+{other}'")),
        },
        Frame::Array(mut frames) => {
            if frames.is_empty() {
                return Err("empty array reply".to_string());
            }
            let tag = match frames.remove(0) {
                Frame::Status(s) => s,
                other => {
                    return Err(format!(
                        "array reply must lead with a status tag, got {}",
                        other.describe()
                    ))
                }
            };
            let int_at = |frames: &[Frame], i: usize, what: &str| -> Result<i64, String> {
                match frames.get(i) {
                    Some(Frame::Int(v)) => Ok(*v),
                    other => Err(format!("{what} must be an int frame, got {other:?}")),
                }
            };
            match (tag.as_str(), frames.len()) {
                ("OK", 1) => Ok(Reply::OkN(int_at(&frames, 0, "count")?)),
                ("SUM", 2) => Ok(Reply::Sum(
                    int_at(&frames, 0, "total")?,
                    int_at(&frames, 1, "count")? as usize,
                )),
                ("SNAPSHOT", 2) => Ok(Reply::Snapshot(
                    int_at(&frames, 0, "seq")? as u64,
                    int_at(&frames, 1, "key count")? as usize,
                )),
                ("HELLO", 1) => Ok(Reply::Hello(int_at(&frames, 0, "version")? as u32)),
                ("STATS", 1) | ("WALSTATS", 1) | ("METRICS", 1) => {
                    let payload = match frames.remove(0) {
                        Frame::Str(s) => s,
                        other => {
                            return Err(format!(
                                "stats payload must be a str frame, got {}",
                                other.describe()
                            ))
                        }
                    };
                    match tag.as_str() {
                        "STATS" => Ok(Reply::Stats(payload)),
                        "METRICS" => Ok(Reply::Metrics(payload)),
                        _ => Ok(Reply::WalStats(payload)),
                    }
                }
                ("SLOWLOG", 1) => {
                    let Frame::Array(items) = frames.remove(0) else {
                        return Err("SLOWLOG payload must be an array frame".to_string());
                    };
                    let mut entries = Vec::with_capacity(items.len());
                    for item in items {
                        let Frame::Str(entry) = item else {
                            return Err("SLOWLOG entry must be a str frame".to_string());
                        };
                        entries.push(entry);
                    }
                    Ok(Reply::SlowLog(entries))
                }
                ("RANGE", 1) => {
                    let Frame::Array(items) = frames.remove(0) else {
                        return Err("RANGE payload must be an array frame".to_string());
                    };
                    let mut pairs = Vec::with_capacity(items.len());
                    for item in items {
                        let Frame::Array(mut pair) = item else {
                            return Err("RANGE pair must be an array frame".to_string());
                        };
                        if pair.len() != 2 {
                            return Err(format!("RANGE pair carries {} frames, not 2", pair.len()));
                        }
                        let value = frame_to_value(pair.remove(1))
                            .ok_or_else(|| "RANGE pair value must be a value frame".to_string())?;
                        let Frame::Int(key) = pair.remove(0) else {
                            return Err("RANGE pair key must be an int frame".to_string());
                        };
                        pairs.push((key, value));
                    }
                    Ok(Reply::Range(pairs))
                }
                ("EXEC", 1) => {
                    let Frame::Array(items) = frames.remove(0) else {
                        return Err("EXEC payload must be an array frame".to_string());
                    };
                    let replies = items
                        .into_iter()
                        .map(parse_reply_v2)
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(Reply::Exec(replies))
                }
                (tag, n) => Err(format!("unrecognized array reply '{tag}' with {n} frames")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typed_values() -> Vec<Value> {
        vec![
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Str(String::new()),
            Value::Str("line\nbreak \0 NUL — ✓ émoji 🦀".to_string()),
            Value::Bytes(vec![]),
            Value::Bytes(vec![0, 10, 13, 255, 0]),
        ]
    }

    #[test]
    fn v1_requests_round_trip_through_render_and_parse() {
        let requests = vec![
            Request::Hello(2),
            Request::Get(3),
            Request::Put(-1, Value::Int(42)),
            Request::Del(0),
            Request::Add(7, -5),
            Request::Range(0, 255),
            Request::Sum(-10, 10),
            Request::Begin,
            Request::Exec,
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::SlowLog(16),
            Request::Snapshot,
            Request::WalStats,
            Request::Quit,
        ];
        for request in requests {
            let line = render_request(&request);
            assert_eq!(parse_request(&line).unwrap(), request, "line '{line}'");
        }
    }

    #[test]
    fn v2_requests_round_trip_through_render_and_parse() {
        let mut requests = vec![
            Request::Hello(2),
            Request::Get(3),
            Request::Del(0),
            Request::Add(7, -5),
            Request::Range(0, 255),
            Request::Sum(-10, 10),
            Request::Begin,
            Request::Exec,
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::SlowLog(16),
            Request::Snapshot,
            Request::WalStats,
            Request::Quit,
        ];
        for value in typed_values() {
            requests.push(Request::Put(-3, value));
        }
        for request in requests {
            let bytes = render_request_v2(&request);
            let (frame, used) = decode_frame(&bytes).unwrap();
            assert_eq!(used, bytes.len(), "{request:?} left trailing bytes");
            assert_eq!(parse_request_v2(frame).unwrap(), request);
        }
    }

    #[test]
    fn verbs_are_case_insensitive_and_whitespace_tolerant() {
        assert_eq!(parse_request("get 5").unwrap(), Request::Get(5));
        assert_eq!(
            parse_request("  PuT   1   2  ").unwrap(),
            Request::Put(1, Value::Int(2))
        );
        assert_eq!(parse_request("hello 2").unwrap(), Request::Hello(2));
    }

    #[test]
    fn malformed_requests_are_rejected_with_coded_messages() {
        let check = |line: &str, code: ErrorCode, needle: &str| {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, code, "line '{line}': {err}");
            assert!(err.message.contains(needle), "line '{line}': {err}");
        };
        check("", ErrorCode::Proto, "empty");
        check("FLY 1", ErrorCode::Proto, "unknown command");
        check("GET", ErrorCode::Arg, "takes 1 argument");
        check("GET x", ErrorCode::Arg, "integer");
        check("PUT 1", ErrorCode::Arg, "takes 2 arguments");
        check("PING 1", ErrorCode::Arg, "takes 0 arguments");
        check("HELLO x", ErrorCode::Arg, "version");
    }

    #[test]
    fn v1_replies_round_trip_through_render_and_parse() {
        let replies = vec![
            Reply::Value(Value::Int(-3)),
            Reply::Nil,
            Reply::Ok,
            Reply::OkN(1),
            Reply::Range(vec![(1, Value::Int(10)), (2, Value::Int(-20))]),
            Reply::Range(Vec::new()),
            Reply::Sum(-5, 3),
            Reply::Queued,
            Reply::Snapshot(17, 4096),
            Reply::Hello(2),
            Reply::Stats("commits=3 aborts=0".to_string()),
            Reply::WalStats("policy=every".to_string()),
            Reply::Pong,
            Reply::Bye,
        ];
        for reply in replies {
            let line = render_reply(&reply);
            assert_eq!(parse_reply(&line).unwrap(), reply, "line '{line}'");
        }
        // Errors round-trip the message; the code is re-classified from the
        // text (v1 has no code token on the wire).
        let line = render_reply(&Reply::err(ErrorCode::Batch, "batch aborted by an earlier error"));
        assert_eq!(
            parse_reply(&line).unwrap(),
            Reply::err(ErrorCode::Batch, "batch aborted by an earlier error")
        );
    }

    #[test]
    fn v2_replies_round_trip_through_render_and_parse() {
        let mut replies = vec![
            Reply::Nil,
            Reply::Ok,
            Reply::OkN(1),
            Reply::Range(Vec::new()),
            Reply::Range(
                typed_values()
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (i as i64 - 2, v))
                    .collect(),
            ),
            Reply::Sum(-5, 3),
            Reply::Queued,
            Reply::Metrics("# TYPE a counter\na{op=\"get\"} 1\n".to_string()),
            Reply::SlowLog(vec![
                "op=EXEC keys=3 attempts=2 wall_us=912".to_string(),
                "op=PUT keys=1 attempts=1 wall_us=40".to_string(),
            ]),
            Reply::SlowLog(Vec::new()),
            Reply::Exec(vec![
                Reply::Value(Value::Str("a\nb".to_string())),
                Reply::Nil,
                Reply::Range(vec![(9, Value::Bytes(vec![0, 1]))]),
                Reply::err(ErrorCode::Type, "key 9 holds a bytes value, not an int"),
            ]),
            Reply::Exec(Vec::new()),
            Reply::Snapshot(17, 4096),
            Reply::Hello(2),
            Reply::Stats("commits=3 aborts=0".to_string()),
            Reply::WalStats("policy=n=64".to_string()),
            Reply::Pong,
            Reply::Bye,
            Reply::err(ErrorCode::Wal, "durability disabled"),
        ];
        for value in typed_values() {
            replies.push(Reply::Value(value));
        }
        for reply in replies {
            let mut bytes = Vec::new();
            render_reply_v2(&mut bytes, &reply);
            let (frame, used) = decode_frame(&bytes).unwrap();
            assert_eq!(used, bytes.len(), "{reply:?} left trailing bytes");
            assert_eq!(parse_reply_v2(frame).unwrap(), reply);
        }
    }

    #[test]
    fn v2_frames_decode_incrementally() {
        // Every strict prefix of a valid frame stream is Incomplete, never
        // Malformed — the property the pipelined server loop relies on.
        let mut bytes = render_request_v2(&Request::Put(
            5,
            Value::Str("payload with \n and \0".to_string()),
        ));
        let mut reply_bytes = Vec::new();
        render_reply_v2(
            &mut reply_bytes,
            &Reply::Exec(vec![Reply::Value(Value::Bytes(vec![0, 255]))]),
        );
        bytes.extend_from_slice(&reply_bytes);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Ok((_, used)) => assert!(used <= cut),
                Err(FrameError::Incomplete) => {}
                Err(FrameError::Malformed(m)) => {
                    panic!("prefix of length {cut} misread as malformed: {m}")
                }
            }
        }
    }

    #[test]
    fn v2_decoder_rejects_garbage_and_resource_claims() {
        assert!(matches!(
            decode_frame(b"!nope\n"),
            Err(FrameError::Malformed(_))
        ));
        assert!(matches!(
            decode_frame(b":not-a-number\n"),
            Err(FrameError::Malformed(_))
        ));
        // A bulk length beyond the cap is rejected before any allocation.
        assert!(matches!(
            decode_frame(b"$99999999999\n"),
            Err(FrameError::Malformed(_))
        ));
        assert!(matches!(
            decode_frame(b"*99999999\n"),
            Err(FrameError::Malformed(_))
        ));
        // Invalid UTF-8 in a str frame is malformed (bytes frames carry it).
        assert!(matches!(
            decode_frame(b"$2\n\xff\xfe\n"),
            Err(FrameError::Malformed(_))
        ));
        assert_eq!(
            decode_frame(b"=2\n\xff\xfe\n").unwrap().0,
            Frame::Bytes(vec![0xff, 0xfe])
        );
        // A header that never terminates is eventually rejected — but only
        // past the cap, so long (legitimate) error frames that arrive
        // fragmented stay Incomplete.
        assert!(matches!(
            decode_frame(&[b':'; MAX_HEADER_BYTES - 1]),
            Err(FrameError::Incomplete)
        ));
        assert!(matches!(
            decode_frame(&[b':'; MAX_HEADER_BYTES + 8]),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn v1_reply_parser_rejects_frame_violations() {
        assert!(parse_reply("").is_err());
        assert!(parse_reply("WAT 1").is_err());
        assert!(parse_reply("RANGE 2 1=1").unwrap_err().contains("announced"));
        assert!(parse_reply("RANGE 1 nope").unwrap_err().contains("malformed pair"));
    }

    #[test]
    fn v1_rendering_of_typed_values_degrades_safely() {
        // A scalar Str/Bytes reply becomes a TYPE-worded ERR line...
        let line = render_reply(&Reply::Value(Value::Str("multi\nline".to_string())));
        assert!(line.starts_with("ERR "), "{line}");
        assert!(!line.contains('\n'), "v1 reply must stay one line: {line:?}");
        assert!(line.contains("int-only"));
        // ...and inside RANGE the value renders as a placeholder.
        let line = render_reply(&Reply::Range(vec![
            (1, Value::Int(5)),
            (2, Value::Bytes(vec![0, 10])),
        ]));
        assert_eq!(line, "RANGE 2 1=5 2=<bytes>");
    }

    #[test]
    fn data_op_classification_gates_batches() {
        assert!(Request::Get(1).is_data_op());
        assert!(Request::Put(1, Value::Str("s".into())).is_data_op());
        assert!(Request::Sum(0, 1).is_data_op());
        for request in [
            Request::Hello(2),
            Request::Begin,
            Request::Exec,
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::SlowLog(8),
            Request::Snapshot,
            Request::WalStats,
            Request::Quit,
        ] {
            assert!(!request.is_data_op(), "{request:?}");
        }
    }

    #[test]
    fn err_rendering_strips_newlines_in_both_framings() {
        let line = render_reply(&Reply::err(ErrorCode::Unknown, "two\nlines"));
        assert!(!line.contains('\n'));
        let mut bytes = Vec::new();
        render_reply_v2(&mut bytes, &Reply::err(ErrorCode::Txn, "two\nlines"));
        let (frame, _) = decode_frame(&bytes).unwrap();
        assert_eq!(
            parse_reply_v2(frame).unwrap(),
            Reply::err(ErrorCode::Txn, "two lines")
        );
    }

    /// Draws a random typed value biased toward framing hazards: embedded
    /// newlines and NULs, frame-tag bytes (`:$=*+-_`), multi-byte UTF-8
    /// boundaries, empty payloads, extreme integers.
    fn draw_value(rng: &mut rand::rngs::SmallRng) -> Value {
        use rand::Rng;
        match rng.gen_range(0..6u32) {
            0 => Value::Int(match rng.gen_range(0..4u32) {
                0 => i64::MIN,
                1 => i64::MAX,
                _ => rng.gen_range(-1_000_000..1_000_000i64),
            }),
            1 | 2 => {
                let len = rng.gen_range(0..64usize);
                let s: String = (0..len)
                    .map(|_| match rng.gen_range(0..8u32) {
                        0 => '\n',
                        1 => '\0',
                        2 => '✓',
                        3 => '🦀',
                        4 => ['$', ':', '*', '+', '-', '_', '='][rng.gen_range(0..7usize)],
                        _ => char::from(rng.gen_range(b' '..=b'~')),
                    })
                    .collect();
                Value::Str(s)
            }
            _ => {
                let len = rng.gen_range(0..64usize);
                Value::Bytes((0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect())
            }
        }
    }

    /// The seeded property at the heart of the v2 framing: for random typed
    /// values — embedded newlines, NULs, frame-tag bytes, multi-byte UTF-8
    /// — `decode ∘ encode = id` for requests and replies, including when
    /// many frames are concatenated into one pipelined buffer.
    #[test]
    fn v2_framing_round_trips_seeded_random_values() {
        use rand::{Rng, SeedableRng};
        for seed in 0..16u64 {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0xF2A3 + seed);
            // One pipelined buffer of several requests...
            let count = rng.gen_range(1..12usize);
            let mut requests = Vec::with_capacity(count);
            let mut wire = Vec::new();
            for _ in 0..count {
                let request = match rng.gen_range(0..4u32) {
                    0 => Request::Put(rng.gen_range(-100..100i64), draw_value(&mut rng)),
                    1 => Request::Get(rng.gen_range(-100..100i64)),
                    2 => Request::Add(rng.gen_range(-100..100i64), rng.gen_range(-50..50i64)),
                    _ => Request::Range(rng.gen_range(-100..0i64), rng.gen_range(0..100i64)),
                };
                wire.extend_from_slice(&render_request_v2(&request));
                requests.push(request);
            }
            let mut at = 0usize;
            for (i, expected) in requests.iter().enumerate() {
                let (frame, used) = decode_frame(&wire[at..])
                    .unwrap_or_else(|e| panic!("seed {seed} request {i}: {e:?}"));
                at += used;
                assert_eq!(&parse_request_v2(frame).unwrap(), expected, "seed {seed}");
            }
            assert_eq!(at, wire.len(), "seed {seed}: trailing request bytes");

            // ...and a pipelined buffer of several replies, nesting typed
            // values inside RANGE and EXEC.
            let count = rng.gen_range(1..10usize);
            let mut replies = Vec::with_capacity(count);
            let mut wire = Vec::new();
            for _ in 0..count {
                let reply = match rng.gen_range(0..5u32) {
                    0 => Reply::Value(draw_value(&mut rng)),
                    1 => Reply::Range(
                        (0..rng.gen_range(0..5usize))
                            .map(|i| (i as i64, draw_value(&mut rng)))
                            .collect(),
                    ),
                    2 => Reply::Exec(
                        (0..rng.gen_range(0..4usize))
                            .map(|_| Reply::Value(draw_value(&mut rng)))
                            .collect(),
                    ),
                    3 => Reply::Nil,
                    _ => Reply::Sum(rng.gen_range(-1000..1000i64), rng.gen_range(0..50usize)),
                };
                render_reply_v2(&mut wire, &reply);
                replies.push(reply);
            }
            let mut at = 0usize;
            for (i, expected) in replies.iter().enumerate() {
                let (frame, used) = decode_frame(&wire[at..])
                    .unwrap_or_else(|e| panic!("seed {seed} reply {i}: {e:?}"));
                at += used;
                assert_eq!(&parse_reply_v2(frame).unwrap(), expected, "seed {seed}");
            }
            assert_eq!(at, wire.len(), "seed {seed}: trailing reply bytes");
        }
    }

    /// Seeded prefix property: no strict prefix of a valid frame stream is
    /// ever Malformed — it is Incomplete (or a complete earlier frame) —
    /// which is what lets the server buffer partial pipelined bursts.
    #[test]
    fn v2_random_frame_prefixes_are_never_malformed() {
        use rand::SeedableRng;
        for seed in 0..8u64 {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0x9F1E + seed);
            let mut wire = Vec::new();
            render_reply_v2(
                &mut wire,
                &Reply::Exec(vec![
                    Reply::Value(draw_value(&mut rng)),
                    Reply::Range(vec![(1, draw_value(&mut rng))]),
                ]),
            );
            for cut in 0..wire.len() {
                match decode_frame(&wire[..cut]) {
                    Ok((_, used)) => assert!(used <= cut, "seed {seed}"),
                    Err(FrameError::Incomplete) => {}
                    Err(FrameError::Malformed(m)) => {
                        panic!("seed {seed}: prefix {cut} misread as malformed: {m}")
                    }
                }
            }
        }
    }

    #[test]
    fn error_codes_round_trip_their_tokens() {
        for code in [
            ErrorCode::Proto,
            ErrorCode::Arg,
            ErrorCode::Type,
            ErrorCode::Batch,
            ErrorCode::Txn,
            ErrorCode::Wal,
            ErrorCode::Unknown,
        ] {
            assert_eq!(ErrorCode::from_token(code.token()), code);
        }
        assert_eq!(ErrorCode::from_token("WHAT"), ErrorCode::Unknown);
    }
}
