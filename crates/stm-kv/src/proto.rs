//! The wire protocol: line-based, text, symmetric.
//!
//! Every request and every reply is one `\n`-terminated line of ASCII
//! text, so the protocol can be driven from `nc` and framed trivially by
//! any client. The grammar:
//!
//! | Request | Reply |
//! |---------|-------|
//! | `GET <key>` | `VALUE <v>` or `NIL` |
//! | `PUT <key> <value>` | `OK` |
//! | `DEL <key>` | `OK 1` (removed) or `OK 0` |
//! | `ADD <key> <delta>` | `VALUE <new>` (absent keys start at 0) |
//! | `RANGE <lo> <hi>` | `RANGE <n> k1=v1 k2=v2 ...` |
//! | `SUM <lo> <hi>` | `SUM <total> <count>` |
//! | `BEGIN` | `OK`; subsequent data ops reply `QUEUED` |
//! | `EXEC` | `EXEC <n>` followed by the `n` queued replies, one per line |
//! | `PING` | `PONG` |
//! | `STATS` | `STATS <key>=<value> ...` |
//! | `SNAPSHOT` | `SNAPSHOT <seq> <keys>` (durable servers only) |
//! | `WALSTATS` | `WALSTATS <key>=<value> ...` (durable servers only) |
//! | `QUIT` | `BYE`, then the connection closes |
//!
//! Any failure — unknown verb, malformed integer, transaction failure — is
//! reported as `ERR <message>` and leaves the connection usable. A failure
//! while a batch is open discards the batch (the client must re-issue
//! `BEGIN`). Requests may be **pipelined**: the server parses every
//! complete line it has buffered before replying, executes them in order,
//! and writes all the replies back in one flush.
//!
//! Both directions are implemented here ([`parse_request`]/[`render_reply`]
//! for the server, [`render_request`]/[`parse_reply`] for the client), so a
//! single test suite pins the grammar from both sides.

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read one key.
    Get(i64),
    /// Store a value (creating or overwriting the key).
    Put(i64, i64),
    /// Remove a key.
    Del(i64),
    /// Add a delta to a key's value (absent keys start at 0).
    Add(i64, i64),
    /// The present keys in `lo..=hi` with their values.
    Range(i64, i64),
    /// Atomic sum + count of the values in `lo..=hi`.
    Sum(i64, i64),
    /// Open a batch: queue data operations until `EXEC`.
    Begin,
    /// Execute the queued batch as one atomic transaction.
    Exec,
    /// Liveness probe.
    Ping,
    /// Server statistics.
    Stats,
    /// Force a point-in-time snapshot of the keyspace (durable servers).
    Snapshot,
    /// Write-ahead-log statistics (durable servers).
    WalStats,
    /// Close the connection.
    Quit,
}

impl Request {
    /// Whether this request is a data operation that may appear inside a
    /// `BEGIN`/`EXEC` batch.
    pub fn is_data_op(&self) -> bool {
        matches!(
            self,
            Request::Get(_)
                | Request::Put(..)
                | Request::Del(_)
                | Request::Add(..)
                | Request::Range(..)
                | Request::Sum(..)
        )
    }
}

/// A server reply to one request (or one queued batch operation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A value (`GET` hit, `ADD` result).
    Value(i64),
    /// Key absent.
    Nil,
    /// Success without a payload (`PUT`, `BEGIN`).
    Ok,
    /// Success with a small integer payload (`DEL` → removed count).
    OkN(i64),
    /// Key/value pairs from a `RANGE`.
    Range(Vec<(i64, i64)>),
    /// Sum and count from a `SUM`.
    Sum(i64, usize),
    /// Operation queued inside an open batch.
    Queued,
    /// A snapshot was written: its cut sequence number and key count.
    Snapshot(u64, usize),
    /// Reply to `PING`.
    Pong,
    /// Connection closing.
    Bye,
    /// Failure.
    Err(String),
}

fn parse_int(token: &str, what: &str) -> Result<i64, String> {
    token
        .parse::<i64>()
        .map_err(|_| format!("{what} must be an integer, got '{token}'"))
}

/// Parses one request line (without its trailing newline).
///
/// Verbs are case-insensitive; arguments are whitespace-separated signed
/// 64-bit integers.
///
/// # Errors
///
/// Returns a human-readable message (sent back as `ERR <message>`) for an
/// unknown verb or a malformed argument list.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or_else(|| "empty request".to_string())?;
    let args: Vec<&str> = tokens.collect();
    let arity = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!(
                "{} takes {} argument{}, got {}",
                verb.to_ascii_uppercase(),
                n,
                if n == 1 { "" } else { "s" },
                args.len()
            ))
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "GET" => {
            arity(1)?;
            Ok(Request::Get(parse_int(args[0], "key")?))
        }
        "PUT" => {
            arity(2)?;
            Ok(Request::Put(
                parse_int(args[0], "key")?,
                parse_int(args[1], "value")?,
            ))
        }
        "DEL" => {
            arity(1)?;
            Ok(Request::Del(parse_int(args[0], "key")?))
        }
        "ADD" => {
            arity(2)?;
            Ok(Request::Add(
                parse_int(args[0], "key")?,
                parse_int(args[1], "delta")?,
            ))
        }
        "RANGE" => {
            arity(2)?;
            Ok(Request::Range(
                parse_int(args[0], "lo")?,
                parse_int(args[1], "hi")?,
            ))
        }
        "SUM" => {
            arity(2)?;
            Ok(Request::Sum(
                parse_int(args[0], "lo")?,
                parse_int(args[1], "hi")?,
            ))
        }
        "BEGIN" => {
            arity(0)?;
            Ok(Request::Begin)
        }
        "EXEC" => {
            arity(0)?;
            Ok(Request::Exec)
        }
        "PING" => {
            arity(0)?;
            Ok(Request::Ping)
        }
        "STATS" => {
            arity(0)?;
            Ok(Request::Stats)
        }
        "SNAPSHOT" => {
            arity(0)?;
            Ok(Request::Snapshot)
        }
        "WALSTATS" => {
            arity(0)?;
            Ok(Request::WalStats)
        }
        "QUIT" => {
            arity(0)?;
            Ok(Request::Quit)
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Renders a request as its wire line (without the trailing newline).
pub fn render_request(request: &Request) -> String {
    match request {
        Request::Get(k) => format!("GET {k}"),
        Request::Put(k, v) => format!("PUT {k} {v}"),
        Request::Del(k) => format!("DEL {k}"),
        Request::Add(k, d) => format!("ADD {k} {d}"),
        Request::Range(lo, hi) => format!("RANGE {lo} {hi}"),
        Request::Sum(lo, hi) => format!("SUM {lo} {hi}"),
        Request::Begin => "BEGIN".to_string(),
        Request::Exec => "EXEC".to_string(),
        Request::Ping => "PING".to_string(),
        Request::Stats => "STATS".to_string(),
        Request::Snapshot => "SNAPSHOT".to_string(),
        Request::WalStats => "WALSTATS".to_string(),
        Request::Quit => "QUIT".to_string(),
    }
}

/// Renders a reply as its wire line (without the trailing newline).
pub fn render_reply(reply: &Reply) -> String {
    match reply {
        Reply::Value(v) => format!("VALUE {v}"),
        Reply::Nil => "NIL".to_string(),
        Reply::Ok => "OK".to_string(),
        Reply::OkN(n) => format!("OK {n}"),
        Reply::Range(pairs) => {
            let mut out = format!("RANGE {}", pairs.len());
            for (k, v) in pairs {
                out.push_str(&format!(" {k}={v}"));
            }
            out
        }
        Reply::Sum(total, count) => format!("SUM {total} {count}"),
        Reply::Queued => "QUEUED".to_string(),
        Reply::Snapshot(seq, keys) => format!("SNAPSHOT {seq} {keys}"),
        Reply::Pong => "PONG".to_string(),
        Reply::Bye => "BYE".to_string(),
        Reply::Err(message) => format!("ERR {}", message.replace('\n', " ")),
    }
}

/// Parses one reply line (without its trailing newline) — the client side
/// of [`render_reply`].
///
/// # Errors
///
/// Returns a message describing the framing violation when the line does
/// not match the reply grammar.
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let line = line.trim_end();
    if let Some(message) = line.strip_prefix("ERR ") {
        return Ok(Reply::Err(message.to_string()));
    }
    let mut tokens = line.split_whitespace();
    let head = tokens.next().ok_or_else(|| "empty reply".to_string())?;
    let rest: Vec<&str> = tokens.collect();
    match head {
        "VALUE" if rest.len() == 1 => Ok(Reply::Value(parse_int(rest[0], "value")?)),
        "NIL" if rest.is_empty() => Ok(Reply::Nil),
        "OK" if rest.is_empty() => Ok(Reply::Ok),
        "OK" if rest.len() == 1 => Ok(Reply::OkN(parse_int(rest[0], "count")?)),
        "RANGE" if !rest.is_empty() => {
            let n = parse_int(rest[0], "pair count")? as usize;
            if rest.len() != n + 1 {
                return Err(format!("RANGE announced {n} pairs, carried {}", rest.len() - 1));
            }
            let mut pairs = Vec::with_capacity(n);
            for pair in &rest[1..] {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("malformed pair '{pair}'"))?;
                pairs.push((parse_int(k, "key")?, parse_int(v, "value")?));
            }
            Ok(Reply::Range(pairs))
        }
        "SUM" if rest.len() == 2 => Ok(Reply::Sum(
            parse_int(rest[0], "total")?,
            parse_int(rest[1], "count")? as usize,
        )),
        "QUEUED" if rest.is_empty() => Ok(Reply::Queued),
        "SNAPSHOT" if rest.len() == 2 => Ok(Reply::Snapshot(
            rest[0]
                .parse::<u64>()
                .map_err(|_| format!("malformed snapshot seq '{}'", rest[0]))?,
            parse_int(rest[1], "key count")? as usize,
        )),
        "PONG" if rest.is_empty() => Ok(Reply::Pong),
        "BYE" if rest.is_empty() => Ok(Reply::Bye),
        "ERR" => Ok(Reply::Err(String::new())),
        _ => Err(format!("unrecognized reply '{line}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_render_and_parse() {
        let requests = vec![
            Request::Get(3),
            Request::Put(-1, 42),
            Request::Del(0),
            Request::Add(7, -5),
            Request::Range(0, 255),
            Request::Sum(-10, 10),
            Request::Begin,
            Request::Exec,
            Request::Ping,
            Request::Stats,
            Request::Snapshot,
            Request::WalStats,
            Request::Quit,
        ];
        for request in requests {
            let line = render_request(&request);
            assert_eq!(parse_request(&line).unwrap(), request, "line '{line}'");
        }
    }

    #[test]
    fn verbs_are_case_insensitive_and_whitespace_tolerant() {
        assert_eq!(parse_request("get 5").unwrap(), Request::Get(5));
        assert_eq!(parse_request("  PuT   1   2  ").unwrap(), Request::Put(1, 2));
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        assert!(parse_request("").unwrap_err().contains("empty"));
        assert!(parse_request("FLY 1").unwrap_err().contains("unknown command"));
        assert!(parse_request("GET").unwrap_err().contains("takes 1 argument"));
        assert!(parse_request("GET x").unwrap_err().contains("integer"));
        assert!(parse_request("PUT 1").unwrap_err().contains("takes 2 arguments"));
        assert!(parse_request("PING 1").unwrap_err().contains("takes 0 arguments"));
    }

    #[test]
    fn replies_round_trip_through_render_and_parse() {
        let replies = vec![
            Reply::Value(-3),
            Reply::Nil,
            Reply::Ok,
            Reply::OkN(1),
            Reply::Range(vec![(1, 10), (2, -20)]),
            Reply::Range(Vec::new()),
            Reply::Sum(-5, 3),
            Reply::Queued,
            Reply::Snapshot(17, 4096),
            Reply::Pong,
            Reply::Bye,
            Reply::Err("boom with spaces".to_string()),
        ];
        for reply in replies {
            let line = render_reply(&reply);
            assert_eq!(parse_reply(&line).unwrap(), reply, "line '{line}'");
        }
    }

    #[test]
    fn reply_parser_rejects_frame_violations() {
        assert!(parse_reply("").is_err());
        assert!(parse_reply("WAT 1").is_err());
        assert!(parse_reply("RANGE 2 1=1").unwrap_err().contains("announced"));
        assert!(parse_reply("RANGE 1 nope").unwrap_err().contains("malformed pair"));
    }

    #[test]
    fn data_op_classification_gates_batches() {
        assert!(Request::Get(1).is_data_op());
        assert!(Request::Sum(0, 1).is_data_op());
        for request in [
            Request::Begin,
            Request::Exec,
            Request::Ping,
            Request::Stats,
            Request::Snapshot,
            Request::WalStats,
            Request::Quit,
        ] {
            assert!(!request.is_data_op(), "{request:?}");
        }
    }

    #[test]
    fn err_rendering_strips_newlines() {
        let line = render_reply(&Reply::Err("two\nlines".to_string()));
        assert!(!line.contains('\n'));
        assert_eq!(parse_reply(&line).unwrap(), Reply::Err("two lines".to_string()));
    }
}
