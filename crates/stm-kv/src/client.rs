//! A small blocking client for the `stm-kv` protocol.
//!
//! One [`KvClient`] owns one TCP connection and issues one request at a
//! time (batches are pipelined: all batch frames are written in one
//! syscall, then all replies are read back). [`KvClient::connect`]
//! negotiates protocol v2 with a `HELLO 2` handshake — typed values,
//! binary-safe framing, coded errors — and falls back to v1 when the
//! server predates the handshake; [`KvClient::connect_v1`] keeps the
//! original line protocol explicitly (integer values only).
//!
//! Failures are structured: every method returns [`KvError`], which
//! separates transport problems ([`KvError::Io`]), framing violations
//! ([`KvError::Protocol`]), server-reported failures with their
//! machine-readable [`ErrorCode`] ([`KvError::Server`]) and client-side
//! type mismatches from the typed getters ([`KvError::Type`]) — no more
//! fishing categories out of one opaque error string.
//!
//! The client is used by the integration tests, the examples, and the
//! closed-loop network load generator in `stm-bench`.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use metrics::{HistogramSnapshot, BUCKETS};

use crate::proto::{
    decode_frame, parse_reply, render_request, render_request_v2, ErrorCode, Frame, FrameError,
    ProtoVersion, Reply, Request,
};
use crate::Value;

/// A structured client-side error.
#[derive(Debug)]
pub enum KvError {
    /// The transport failed (connect, read, write, unexpected EOF).
    Io(io::Error),
    /// The peer violated the reply grammar (malformed frame or line, reply
    /// that does not match the request).
    Protocol(String),
    /// The server reported a failure, with its machine-readable code
    /// (classified from the message text on v1 connections).
    Server {
        /// Error category.
        code: ErrorCode,
        /// Human-readable server message.
        message: String,
    },
    /// A typed getter found a value of a different kind (`get_int` on a
    /// `Str`, ...).
    Type {
        /// The kind the caller asked for.
        expected: &'static str,
        /// The kind actually stored.
        found: &'static str,
    },
    /// The request cannot be expressed on this connection's protocol
    /// version (a `Str`/`Bytes` value over v1 — reconnect with
    /// [`KvClient::connect`] to negotiate v2).
    UnsupportedValue(String),
}

impl KvError {
    /// The server-reported error code, when this is a server failure.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            KvError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    fn unexpected(reply: &Reply, what: &str) -> KvError {
        KvError::Protocol(format!("unexpected reply {reply:?} to {what}"))
    }
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Io(err) => write!(f, "i/o error: {err}"),
            KvError::Protocol(message) => write!(f, "protocol violation: {message}"),
            KvError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            KvError::Type { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            KvError::UnsupportedValue(message) => {
                write!(f, "unsupported on protocol v1: {message}")
            }
        }
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KvError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for KvError {
    fn from(err: io::Error) -> Self {
        KvError::Io(err)
    }
}

/// Result alias for client operations.
pub type KvResult<T> = Result<T, KvError>;

/// A data operation inside a [`KvClient::batch`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Read one key.
    Get(i64),
    /// Store a value.
    Put(i64, Value),
    /// Remove a key.
    Del(i64),
    /// Add a delta to a key's integer value.
    Add(i64, i64),
    /// Keys and values in `lo..=hi`.
    Range(i64, i64),
    /// Sum + count of the integer values in `lo..=hi`.
    Sum(i64, i64),
}

impl BatchOp {
    fn to_request(&self) -> Request {
        match self {
            BatchOp::Get(k) => Request::Get(*k),
            BatchOp::Put(k, v) => Request::Put(*k, v.clone()),
            BatchOp::Del(k) => Request::Del(*k),
            BatchOp::Add(k, d) => Request::Add(*k, *d),
            BatchOp::Range(lo, hi) => Request::Range(*lo, *hi),
            BatchOp::Sum(lo, hi) => Request::Sum(*lo, *hi),
        }
    }
}

/// A fluent builder for an atomic `BEGIN`/`EXEC` batch.
///
/// ```no_run
/// # use stm_kv::{KvClient, Value};
/// # let mut client = KvClient::connect("127.0.0.1:7878").unwrap();
/// let replies = client
///     .batch_builder()
///     .put(1, "typed")
///     .add(2, 5)
///     .get(1)
///     .sum(0, 100)
///     .run()
///     .unwrap();
/// ```
#[derive(Debug)]
pub struct BatchBuilder<'a> {
    client: &'a mut KvClient,
    ops: Vec<BatchOp>,
}

impl<'a> BatchBuilder<'a> {
    /// Queues a read of `key`.
    pub fn get(mut self, key: i64) -> Self {
        self.ops.push(BatchOp::Get(key));
        self
    }

    /// Queues a typed store at `key`.
    pub fn put(mut self, key: i64, value: impl Into<Value>) -> Self {
        self.ops.push(BatchOp::Put(key, value.into()));
        self
    }

    /// Queues a removal of `key`.
    pub fn del(mut self, key: i64) -> Self {
        self.ops.push(BatchOp::Del(key));
        self
    }

    /// Queues an integer add at `key`.
    pub fn add(mut self, key: i64, delta: i64) -> Self {
        self.ops.push(BatchOp::Add(key, delta));
        self
    }

    /// Queues a range read over `lo..=hi`.
    pub fn range(mut self, lo: i64, hi: i64) -> Self {
        self.ops.push(BatchOp::Range(lo, hi));
        self
    }

    /// Queues an integer sum over `lo..=hi`.
    pub fn sum(mut self, lo: i64, hi: i64) -> Self {
        self.ops.push(BatchOp::Sum(lo, hi));
        self
    }

    /// The ops queued so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing is queued yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes the queued ops as one atomic transaction, returning one
    /// reply per op.
    ///
    /// # Errors
    ///
    /// Everything [`KvClient::batch`] reports.
    pub fn run(self) -> KvResult<Vec<Reply>> {
        let BatchBuilder { client, ops } = self;
        client.batch(&ops)
    }
}

/// The parsed payload of a `STATS` reply.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Committed transaction attempts on the server's STM.
    pub commits: u64,
    /// Aborted transaction attempts on the server's STM.
    pub aborts: u64,
    /// Single data requests executed.
    pub requests: u64,
    /// `BEGIN`/`EXEC` batches executed.
    pub batches: u64,
    /// Aborted attempts attributed to client requests.
    pub retries: u64,
    /// `ERR` replies sent.
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Connections currently being served (registered in an event-loop
    /// shard, or claimed by a pool worker).
    pub conns_open: u64,
    /// Connections accepted since start (alias of
    /// [`connections`](Self::connections), emitted as `conns_accepted=`).
    pub conns_accepted: u64,
    /// Connections closed by the event loop's idle-timeout reaper.
    pub conns_reaped_idle: u64,
    /// Reply flushes the event loop had to park behind write-readiness
    /// because the socket buffer filled mid-reply.
    pub partial_writes: u64,
    /// Value cells ever materialised (monotone — the keyspace-growth
    /// gauge; subtract [`cells_freed`](Self::cells_freed) and
    /// [`limbo`](Self::limbo) for the live resident count).
    pub cells_allocated: u64,
    /// Deleted keys' cells the epoch GC has reclaimed.
    pub cells_freed: u64,
    /// Retired cells still waiting out their epoch grace period.
    pub limbo: u64,
    /// Overflow cells per index shard (keys outside the pre-allocated
    /// range), in shard order.
    pub overflow_per_shard: Vec<u64>,
}

/// The parsed payload of a `WALSTATS` reply (durable servers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    /// Fsync policy label (`every`, `n=<count>`, `ms=<millis>`).
    pub policy: String,
    /// Next commit sequence number the log will assign.
    pub next_seq: u64,
    /// Highest sequence number covered by an fsync.
    pub durable_seq: u64,
    /// Records appended since the server started.
    pub records: u64,
    /// Bytes written to segment files since the server started.
    pub bytes: u64,
    /// fsync calls issued since the server started.
    pub fsyncs: u64,
    /// Segment files on disk.
    pub segments: u64,
    /// Snapshots written since the server started.
    pub snapshots: u64,
    /// Sequence number of the latest snapshot (0 = none).
    pub last_snapshot_seq: u64,
    /// Records appended since the latest snapshot.
    pub since_snapshot: u64,
    /// Whether the server's log writer stopped on an unrecoverable
    /// filesystem error (durability disabled from that point).
    pub failed: bool,
}

/// The parsed payload of a `METRICS` reply: the server's Prometheus-style
/// text exposition folded into typed lookups.
///
/// Samples are keyed by their full rendered series — metric name plus
/// label set exactly as exposed, e.g.
/// `stm_aborts_total{cause="killed_by_enemy"}`. Histogram series can be
/// reassembled back into a [`HistogramSnapshot`] — the very type the
/// server records into — so client-side quantiles agree with server-side
/// accounting bucket-for-bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The raw exposition text, byte-for-byte as served.
    pub text: String,
    samples: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// Parses an exposition text: `#`-comment lines are skipped, every
    /// other non-empty line must read `series value`.
    ///
    /// # Errors
    ///
    /// [`KvError::Protocol`] on a malformed sample line.
    pub fn parse(text: String) -> KvResult<MetricsSnapshot> {
        let mut samples = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (series, raw) = line
                .rsplit_once(' ')
                .ok_or_else(|| proto_err(format!("malformed metrics line '{line}'")))?;
            // Gauges are signed on the wire; a (never expected) negative
            // sample clamps to zero rather than failing the whole scrape.
            let value = raw
                .parse::<u64>()
                .or_else(|_| raw.parse::<i64>().map(|v| v.max(0) as u64))
                .map_err(|_| proto_err(format!("malformed metrics value '{line}'")))?;
            samples.insert(series.to_string(), value);
        }
        Ok(MetricsSnapshot { text, samples })
    }

    /// The value of one series, by its full rendered name (labels
    /// included, in exposition order).
    pub fn value(&self, series: &str) -> Option<u64> {
        self.samples.get(series).copied()
    }

    /// Sum of every sample of one metric name across its label sets
    /// (series named exactly `name` or `name{...}`; a histogram's
    /// `_bucket`/`_sum`/`_count` series are distinct names and do not fold
    /// in).
    pub fn counter(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter_map(|(series, &value)| series_labels(series, name).map(|_| value))
            .sum()
    }

    /// Every parsed sample, sorted by series name — the stable surface the
    /// exposition-stability tests pin down.
    pub fn samples(&self) -> impl Iterator<Item = (&str, u64)> {
        self.samples.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Reassembles histogram `base` into a [`HistogramSnapshot`],
    /// de-cumulating its `_bucket{le=...}` samples.
    ///
    /// An unlabelled `base` (`"stm_kv_op_latency_us"`) folds every label
    /// set of that name together; a labelled one
    /// (`r#"stm_kv_op_latency_us{op="GET"}"#`) selects exactly that
    /// series. Returns `None` when no matching `_count` sample exists.
    pub fn histogram(&self, base: &str) -> Option<HistogramSnapshot> {
        let (name, want) = match base.split_once('{') {
            Some((name, labels)) => (name, labels.trim_end_matches('}')),
            None => (base, ""),
        };
        let bucket_name = format!("{name}_bucket");
        let sum_name = format!("{name}_sum");
        let count_name = format!("{name}_count");

        // Cumulative bucket samples, grouped per label set (each set has
        // its own cumulative sequence; the sets only add up after
        // de-cumulation). The `+Inf` bucket aliases the top finite bucket
        // when that bucket is populated — both land on index BUCKETS-1
        // with equal cumulative values, so the duplicate de-cumulates to
        // zero extra mass.
        let mut per_set: BTreeMap<&str, Vec<(usize, u64)>> = BTreeMap::new();
        for (series, &value) in &self.samples {
            let Some(labels) = series_labels(series, &bucket_name) else {
                continue;
            };
            let Some((own, le)) = split_le_label(labels) else {
                continue;
            };
            if !want.is_empty() && own != want {
                continue;
            }
            let Some(index) = le_bucket_index(le) else {
                continue;
            };
            per_set.entry(own).or_default().push((index, value));
        }
        let mut buckets = [0u64; BUCKETS];
        for (_, mut cumulatives) in per_set {
            cumulatives.sort_unstable();
            let mut previous = 0u64;
            for (index, cumulative) in cumulatives {
                buckets[index] += cumulative.saturating_sub(previous);
                previous = previous.max(cumulative);
            }
        }

        let mut sum = 0u64;
        let mut count = 0u64;
        let mut found = false;
        for (series, &value) in &self.samples {
            if let Some(own) = series_labels(series, &count_name) {
                if want.is_empty() || own == want {
                    count += value;
                    found = true;
                }
            } else if let Some(own) = series_labels(series, &sum_name) {
                if want.is_empty() || own == want {
                    sum = sum.wrapping_add(value);
                }
            }
        }
        if !found {
            return None;
        }
        Some(HistogramSnapshot { buckets, count, sum })
    }
}

/// The label body of `series` when its metric name is exactly `name`:
/// `Some("")` for a bare `name`, `Some(inner)` for `name{inner}`, `None`
/// for any other metric (including longer names sharing the prefix).
fn series_labels<'a>(series: &'a str, name: &str) -> Option<&'a str> {
    let rest = series.strip_prefix(name)?;
    if rest.is_empty() {
        Some("")
    } else {
        rest.strip_prefix('{')?.strip_suffix('}')
    }
}

/// Splits a `_bucket` label body into (own labels, le value) — `le`
/// renders last, so everything before it belongs to the series itself.
fn split_le_label(labels: &str) -> Option<(&str, &str)> {
    let start = labels.rfind("le=\"")?;
    let le = labels[start + 4..].strip_suffix('"')?;
    Some((labels[..start].trim_end_matches(','), le))
}

/// Maps an `le` upper bound back to its log2 bucket index; `+Inf` and
/// `u64::MAX` are both the overflow bucket.
fn le_bucket_index(le: &str) -> Option<usize> {
    if le == "+Inf" {
        return Some(BUCKETS - 1);
    }
    let bound: u64 = le.parse().ok()?;
    // Valid bounds are 2^i - 1 (0, 1, 3, 7, ...) or u64::MAX.
    if !bound.wrapping_add(1).is_power_of_two() && bound != u64::MAX {
        return None;
    }
    Some((bound.wrapping_add(1).trailing_zeros() as usize).min(BUCKETS - 1))
}

/// A blocking connection to an `stm-kv` server.
#[derive(Debug)]
pub struct KvClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    proto: ProtoVersion,
    /// Bytes read off the socket but not yet consumed by a v2 frame.
    pending: Vec<u8>,
}

fn proto_err(message: impl Into<String>) -> KvError {
    KvError::Protocol(message.into())
}

fn parse_counter_pair(pair: &str) -> KvResult<(&str, u64)> {
    let (key, value) = pair
        .split_once('=')
        .ok_or_else(|| proto_err(format!("malformed counter pair '{pair}'")))?;
    let value: u64 = value
        .parse()
        .map_err(|_| proto_err(format!("malformed counter value '{pair}'")))?;
    Ok((key, value))
}

impl KvClient {
    /// Connects and negotiates the newest protocol version (`HELLO 2`):
    /// typed values, binary-safe framing, coded errors. A server that
    /// rejects the handshake (predating it) leaves the connection on v1.
    ///
    /// # Errors
    ///
    /// Propagates connection errors and handshake framing violations.
    pub fn connect(addr: impl ToSocketAddrs) -> KvResult<KvClient> {
        let mut client = KvClient::connect_v1(addr)?;
        client.send_line(&render_request(&Request::Hello(2)))?;
        match client.read_reply_line()? {
            line if line.starts_with("HELLO 2") => {
                client.proto = ProtoVersion::V2;
                Ok(client)
            }
            line if line.starts_with("ERR ") => Ok(client), // pre-HELLO server: stay v1
            line => Err(proto_err(format!("unexpected reply '{line}' to HELLO"))),
        }
    }

    /// Connects without negotiating: the connection speaks the original v1
    /// line protocol (integer values only).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect_v1(addr: impl ToSocketAddrs) -> KvResult<KvClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(KvClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            proto: ProtoVersion::V1,
            pending: Vec::new(),
        })
    }

    /// The protocol version this connection negotiated (1 or 2).
    pub fn protocol_version(&self) -> u32 {
        self.proto.number()
    }

    fn send_line(&mut self, line: &str) -> KvResult<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_reply_line(&mut self) -> KvResult<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(KvError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(line.trim_end().to_string())
    }

    /// Reads one complete v2 frame, buffering across reads.
    fn read_frame(&mut self) -> KvResult<Frame> {
        loop {
            match decode_frame(&self.pending) {
                Ok((frame, used)) => {
                    self.pending.drain(..used);
                    return Ok(frame);
                }
                Err(FrameError::Incomplete) => {
                    let chunk = self.reader.fill_buf()?;
                    if chunk.is_empty() {
                        return Err(KvError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection mid-frame",
                        )));
                    }
                    let n = chunk.len();
                    self.pending.extend_from_slice(chunk);
                    self.reader.consume(n);
                }
                Err(FrameError::Malformed(message)) => return Err(proto_err(message)),
            }
        }
    }

    /// Writes one request in the connection's framing (no flush).
    fn write_request(&mut self, request: &Request) -> KvResult<()> {
        match self.proto {
            ProtoVersion::V1 => {
                if let Request::Put(_, value) = request {
                    if !matches!(value, Value::Int(_)) {
                        return Err(KvError::UnsupportedValue(format!(
                            "a {} value needs protocol v2 (connect with KvClient::connect)",
                            value.type_name()
                        )));
                    }
                }
                self.writer.write_all(render_request(request).as_bytes())?;
                self.writer.write_all(b"\n")?;
            }
            ProtoVersion::V2 => {
                self.writer.write_all(&render_request_v2(request))?;
            }
        }
        Ok(())
    }

    /// Reads one reply in the connection's framing. On v1 the multi-line
    /// replies (`EXEC`, `METRICS`, `SLOWLOG`) are assembled from their
    /// header plus per-item lines.
    fn read_reply(&mut self) -> KvResult<Reply> {
        match self.proto {
            ProtoVersion::V1 => {
                let line = self.read_reply_line()?;
                if let Some(count) = line.strip_prefix("EXEC ").and_then(|n| n.parse::<usize>().ok())
                {
                    let mut replies = Vec::with_capacity(count);
                    for _ in 0..count {
                        let line = self.read_reply_line()?;
                        replies.push(parse_reply(&line).map_err(proto_err)?);
                    }
                    return Ok(Reply::Exec(replies));
                }
                // METRICS and SLOWLOG are the other multi-line v1 replies:
                // a header carrying the line count, then that many payload
                // lines, reassembled here rather than in parse_reply.
                if let Some(count) =
                    line.strip_prefix("METRICS ").and_then(|n| n.parse::<usize>().ok())
                {
                    let mut text = String::new();
                    for _ in 0..count {
                        text.push_str(&self.read_reply_line()?);
                        text.push('\n');
                    }
                    return Ok(Reply::Metrics(text));
                }
                if let Some(count) =
                    line.strip_prefix("SLOWLOG ").and_then(|n| n.parse::<usize>().ok())
                {
                    let mut entries = Vec::with_capacity(count);
                    for _ in 0..count {
                        entries.push(self.read_reply_line()?);
                    }
                    return Ok(Reply::SlowLog(entries));
                }
                parse_reply(&line).map_err(proto_err)
            }
            ProtoVersion::V2 => {
                let frame = self.read_frame()?;
                crate::proto::parse_reply_v2(frame).map_err(proto_err)
            }
        }
    }

    /// Sends one request and reads one reply, surfacing error replies as
    /// [`KvError::Server`].
    fn roundtrip(&mut self, request: &Request) -> KvResult<Reply> {
        self.write_request(request)?;
        self.writer.flush()?;
        match self.read_reply()? {
            Reply::Err(code, message) => Err(KvError::Server { code, message }),
            reply => Ok(reply),
        }
    }

    /// Reads one key as its typed value.
    ///
    /// # Errors
    ///
    /// I/O failures and server error replies.
    pub fn get(&mut self, key: i64) -> KvResult<Option<Value>> {
        match self.roundtrip(&Request::Get(key))? {
            Reply::Value(v) => Ok(Some(v)),
            Reply::Nil => Ok(None),
            other => Err(KvError::unexpected(&other, "GET")),
        }
    }

    /// Reads one key, requiring an integer value.
    ///
    /// # Errors
    ///
    /// [`KvError::Type`] when the key holds a `Str`/`Bytes` value, plus
    /// everything [`KvClient::get`] reports.
    pub fn get_int(&mut self, key: i64) -> KvResult<Option<i64>> {
        match self.get(key)? {
            None => Ok(None),
            Some(Value::Int(v)) => Ok(Some(v)),
            Some(other) => Err(KvError::Type {
                expected: "int",
                found: other.type_name(),
            }),
        }
    }

    /// Reads one key, requiring a string value.
    ///
    /// # Errors
    ///
    /// [`KvError::Type`] when the key holds an `Int`/`Bytes` value, plus
    /// everything [`KvClient::get`] reports.
    pub fn get_str(&mut self, key: i64) -> KvResult<Option<String>> {
        match self.get(key)? {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s)),
            Some(other) => Err(KvError::Type {
                expected: "str",
                found: other.type_name(),
            }),
        }
    }

    /// Reads one key, requiring a bytes value.
    ///
    /// # Errors
    ///
    /// [`KvError::Type`] when the key holds an `Int`/`Str` value, plus
    /// everything [`KvClient::get`] reports.
    pub fn get_bytes(&mut self, key: i64) -> KvResult<Option<Vec<u8>>> {
        match self.get(key)? {
            None => Ok(None),
            Some(Value::Bytes(b)) => Ok(Some(b)),
            Some(other) => Err(KvError::Type {
                expected: "bytes",
                found: other.type_name(),
            }),
        }
    }

    /// Stores a typed value (`client.put(1, 5)`, `client.put(1, "text")`,
    /// `client.put(1, vec![0u8, 255])`).
    ///
    /// # Errors
    ///
    /// I/O failures, server error replies, and
    /// [`KvError::UnsupportedValue`] for non-integer values on a v1
    /// connection.
    pub fn put(&mut self, key: i64, value: impl Into<Value>) -> KvResult<()> {
        match self.roundtrip(&Request::Put(key, value.into()))? {
            Reply::Ok => Ok(()),
            other => Err(KvError::unexpected(&other, "PUT")),
        }
    }

    /// Removes a key; `true` when it was present.
    ///
    /// # Errors
    ///
    /// I/O failures and server error replies.
    pub fn del(&mut self, key: i64) -> KvResult<bool> {
        match self.roundtrip(&Request::Del(key))? {
            Reply::OkN(n) => Ok(n != 0),
            other => Err(KvError::unexpected(&other, "DEL")),
        }
    }

    /// Adds `delta` to a key's integer value, returning the new value.
    ///
    /// # Errors
    ///
    /// A [`KvError::Server`] with [`ErrorCode::Type`] when the key holds a
    /// non-integer value, plus I/O failures.
    pub fn add(&mut self, key: i64, delta: i64) -> KvResult<i64> {
        match self.roundtrip(&Request::Add(key, delta))? {
            Reply::Value(Value::Int(v)) => Ok(v),
            other => Err(KvError::unexpected(&other, "ADD")),
        }
    }

    /// The present keys in `lo..=hi` with their typed values.
    ///
    /// # Errors
    ///
    /// I/O failures and server error replies.
    pub fn range(&mut self, lo: i64, hi: i64) -> KvResult<Vec<(i64, Value)>> {
        match self.roundtrip(&Request::Range(lo, hi))? {
            Reply::Range(pairs) => Ok(pairs),
            other => Err(KvError::unexpected(&other, "RANGE")),
        }
    }

    /// Atomic `(sum, count)` of the integer values in `lo..=hi`.
    ///
    /// # Errors
    ///
    /// A [`KvError::Server`] with [`ErrorCode::Type`] when the window holds
    /// a non-integer value, plus I/O failures.
    pub fn sum(&mut self, lo: i64, hi: i64) -> KvResult<(i64, usize)> {
        match self.roundtrip(&Request::Sum(lo, hi))? {
            Reply::Sum(total, count) => Ok((total, count)),
            other => Err(KvError::unexpected(&other, "SUM")),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// I/O failures and server error replies.
    pub fn ping(&mut self) -> KvResult<()> {
        match self.roundtrip(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(KvError::unexpected(&other, "PING")),
        }
    }

    /// Fetches and parses the server's `STATS` counters.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed `STATS` payloads.
    pub fn stats(&mut self) -> KvResult<ServerStatsSnapshot> {
        let payload = match self.roundtrip(&Request::Stats)? {
            Reply::Stats(payload) => payload,
            other => return Err(KvError::unexpected(&other, "STATS")),
        };
        let mut stats = ServerStatsSnapshot::default();
        for pair in payload.split_whitespace() {
            // `overflow` is the one list-valued pair (comma-separated
            // per-shard counts).
            if let Some(list) = pair.strip_prefix("overflow=") {
                stats.overflow_per_shard = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.parse::<u64>()
                            .map_err(|_| proto_err(format!("malformed overflow list '{list}'")))
                    })
                    .collect::<KvResult<Vec<u64>>>()?;
                continue;
            }
            let (key, value) = parse_counter_pair(pair)?;
            match key {
                "commits" => stats.commits = value,
                "aborts" => stats.aborts = value,
                "requests" => stats.requests = value,
                "batches" => stats.batches = value,
                "retries" => stats.retries = value,
                "errors" => stats.errors = value,
                "connections" => stats.connections = value,
                "conns_open" => stats.conns_open = value,
                "conns_accepted" => stats.conns_accepted = value,
                "conns_reaped_idle" => stats.conns_reaped_idle = value,
                "partial_writes" => stats.partial_writes = value,
                "cells" => stats.cells_allocated = value,
                "cells_freed" => stats.cells_freed = value,
                "limbo" => stats.limbo = value,
                _ => {} // forward-compatible: ignore unknown counters
            }
        }
        Ok(stats)
    }

    /// Forces a point-in-time snapshot on a durable server, returning the
    /// cut sequence number and the number of keys persisted.
    ///
    /// # Errors
    ///
    /// I/O failures and server error replies (e.g. a volatile server, code
    /// [`ErrorCode::Wal`]).
    pub fn snapshot(&mut self) -> KvResult<(u64, usize)> {
        match self.roundtrip(&Request::Snapshot)? {
            Reply::Snapshot(seq, keys) => Ok((seq, keys)),
            other => Err(KvError::unexpected(&other, "SNAPSHOT")),
        }
    }

    /// Fetches and parses a durable server's `WALSTATS` counters.
    ///
    /// # Errors
    ///
    /// I/O failures, server error replies (e.g. a volatile server), and
    /// malformed `WALSTATS` payloads.
    pub fn walstats(&mut self) -> KvResult<WalStatsSnapshot> {
        let payload = match self.roundtrip(&Request::WalStats)? {
            Reply::WalStats(payload) => payload,
            other => return Err(KvError::unexpected(&other, "WALSTATS")),
        };
        let mut stats = WalStatsSnapshot::default();
        for pair in payload.split_whitespace() {
            // `policy` is the one non-numeric pair (its value may itself
            // contain '=', e.g. `policy=n=64`).
            if let Some(policy) = pair.strip_prefix("policy=") {
                stats.policy = policy.to_string();
                continue;
            }
            let (key, value) = parse_counter_pair(pair)?;
            match key {
                "next_seq" => stats.next_seq = value,
                "durable_seq" => stats.durable_seq = value,
                "records" => stats.records = value,
                "bytes" => stats.bytes = value,
                "fsyncs" => stats.fsyncs = value,
                "segments" => stats.segments = value,
                "snapshots" => stats.snapshots = value,
                "last_snapshot_seq" => stats.last_snapshot_seq = value,
                "since_snapshot" => stats.since_snapshot = value,
                "failed" => stats.failed = value != 0,
                _ => {} // forward-compatible: ignore unknown counters
            }
        }
        Ok(stats)
    }

    /// Fetches the server's full `METRICS` exposition — latency
    /// histograms, abort causes, manager decisions — parsed into a typed
    /// [`MetricsSnapshot`] (the raw text rides along in
    /// [`MetricsSnapshot::text`]).
    ///
    /// # Errors
    ///
    /// I/O failures, server error replies, and malformed exposition lines.
    pub fn metrics(&mut self) -> KvResult<MetricsSnapshot> {
        match self.roundtrip(&Request::Metrics)? {
            Reply::Metrics(text) => MetricsSnapshot::parse(text),
            other => Err(KvError::unexpected(&other, "METRICS")),
        }
    }

    /// The server's `n` slowest requests, slowest first — one rendered
    /// `key=value` line each (op, key count, attempts, abort causes,
    /// contention-manager verdicts, wall/transaction timings).
    ///
    /// # Errors
    ///
    /// I/O failures and server error replies.
    pub fn slowlog(&mut self, n: u64) -> KvResult<Vec<String>> {
        match self.roundtrip(&Request::SlowLog(n))? {
            Reply::SlowLog(entries) => Ok(entries),
            other => Err(KvError::unexpected(&other, "SLOWLOG")),
        }
    }

    /// Starts a fluent atomic batch; finish it with [`BatchBuilder::run`].
    pub fn batch_builder(&mut self) -> BatchBuilder<'_> {
        BatchBuilder {
            client: self,
            ops: Vec::new(),
        }
    }

    /// Executes `ops` as one atomic `BEGIN`/`EXEC` batch and returns one
    /// reply per operation. The whole batch is pipelined: every request is
    /// written before any reply is read.
    ///
    /// # Errors
    ///
    /// I/O failures, server error replies (the batch is poisoned
    /// server-side; [`KvError::Server`] carries the code of the first
    /// refusal), and framing violations.
    pub fn batch(&mut self, ops: &[BatchOp]) -> KvResult<Vec<Reply>> {
        self.write_request(&Request::Begin)?;
        for op in ops {
            self.write_request(&op.to_request())?;
        }
        self.write_request(&Request::Exec)?;
        self.writer.flush()?;

        // The whole batch is already on the wire, so a refused BEGIN or a
        // refused queued op must still drain every remaining pipelined reply
        // (including the EXEC response) before surfacing the error —
        // otherwise the connection's request/reply framing desyncs and every
        // later call reads some earlier op's answer.
        let mut first_error: Option<KvError> = None;
        match self.read_reply()? {
            Reply::Ok => {}
            Reply::Err(code, message) => {
                first_error = Some(KvError::Server {
                    code,
                    message: format!("BEGIN refused: {message}"),
                })
            }
            other => first_error = Some(KvError::unexpected(&other, "BEGIN")),
        }
        for op in ops {
            match self.read_reply()? {
                Reply::Queued => {}
                Reply::Err(code, message) => {
                    first_error.get_or_insert(KvError::Server {
                        code,
                        message: format!("batch op {op:?} refused: {message}"),
                    });
                }
                other => {
                    first_error
                        .get_or_insert_with(|| KvError::unexpected(&other, "a queued batch op"));
                }
            }
        }
        let exec = self.read_reply()?;
        if let Some(error) = first_error {
            // The server poisons a failed batch, so its EXEC reply is an
            // error — the replies (if it somehow executed) were already
            // drained as part of `read_reply`'s EXEC assembly.
            return Err(error);
        }
        match exec {
            Reply::Exec(replies) => {
                if replies.len() != ops.len() {
                    return Err(proto_err(format!(
                        "EXEC returned {} replies for {} ops",
                        replies.len(),
                        ops.len()
                    )));
                }
                Ok(replies)
            }
            Reply::Err(code, message) => Err(KvError::Server {
                code,
                message: format!("batch failed: {message}"),
            }),
            other => Err(KvError::unexpected(&other, "EXEC")),
        }
    }

    /// Atomically moves `amount` from `from` to `to` (both treated as `0`
    /// when absent) — the conservation workload's primitive, built from one
    /// `BEGIN`/`EXEC` batch of two `ADD`s.
    ///
    /// # Errors
    ///
    /// Everything [`KvClient::batch`] reports, plus a [`KvError::Server`]
    /// with [`ErrorCode::Type`] when either account holds a non-integer
    /// value — in that case the server aborts the whole batch transaction,
    /// so **neither** account moved: a transfer can fail, but it can never
    /// half-apply.
    pub fn transfer(&mut self, from: i64, to: i64, amount: i64) -> KvResult<()> {
        let replies = self.batch(&[BatchOp::Add(from, -amount), BatchOp::Add(to, amount)])?;
        for reply in &replies {
            if let Reply::Err(code, message) = reply {
                return Err(KvError::Server {
                    code: *code,
                    message: message.clone(),
                });
            }
        }
        if replies.len() == 2 {
            Ok(())
        } else {
            Err(proto_err("transfer batch returned a partial reply"))
        }
    }

    /// Says goodbye and closes the connection.
    ///
    /// # Errors
    ///
    /// I/O failures before `BYE` arrives.
    pub fn quit(mut self) -> KvResult<()> {
        match self.roundtrip(&Request::Quit)? {
            Reply::Bye => Ok(()),
            other => Err(KvError::unexpected(&other, "QUIT")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{KvServer, ServerConfig};

    fn test_server() -> KvServer {
        KvServer::start(ServerConfig {
            capacity: 64,
            shards: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn typed_client_round_trips_over_v2() {
        let server = test_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        assert_eq!(client.protocol_version(), 2);
        client.ping().unwrap();
        assert_eq!(client.get(1).unwrap(), None);
        client.put(1, 11).unwrap();
        client.put(2, 22).unwrap();
        assert_eq!(client.get_int(1).unwrap(), Some(11));
        assert_eq!(client.add(1, -1).unwrap(), 10);
        let range = client.range(0, 63).unwrap();
        assert_eq!(range, vec![(1, Value::Int(10)), (2, Value::Int(22))]);
        assert_eq!(client.sum(0, 63).unwrap(), (32, 2));
        assert!(client.del(2).unwrap());
        assert!(!client.del(2).unwrap());
        // Typed values, byte-exact — newlines, NULs, UTF-8 boundaries.
        let text = "line\nbreak \0 NUL — ✓ 🦀";
        client.put(5, text).unwrap();
        assert_eq!(client.get_str(5).unwrap().as_deref(), Some(text));
        client.put(6, vec![0u8, 255, 10, 13]).unwrap();
        assert_eq!(client.get_bytes(6).unwrap(), Some(vec![0, 255, 10, 13]));
        // Typed getters enforce kinds client-side...
        match client.get_int(5).unwrap_err() {
            KvError::Type { expected, found } => {
                assert_eq!((expected, found), ("int", "str"));
            }
            other => panic!("expected a type error, got {other}"),
        }
        // ...and the server enforces arithmetic server-side, with a code.
        match client.add(5, 1).unwrap_err() {
            KvError::Server { code, message } => {
                assert_eq!(code, ErrorCode::Type, "{message}");
            }
            other => panic!("expected a coded server error, got {other}"),
        }
        // The keyspace is dynamic: any i64 key is addressable.
        assert_eq!(client.get(1_000_000).unwrap(), None);
        client.put(-5, 7).unwrap();
        assert_eq!(client.get_int(-5).unwrap(), Some(7));
        assert!(client.del(-5).unwrap());
        // Durability commands surface the server's polite refusal when the
        // server is volatile — coded — and the connection survives.
        match client.snapshot().unwrap_err() {
            KvError::Server { code, message } => {
                assert_eq!(code, ErrorCode::Wal);
                assert!(message.contains("durability disabled"), "{message}");
            }
            other => panic!("expected WAL error, got {other}"),
        }
        assert!(matches!(
            client.walstats().unwrap_err(),
            KvError::Server { code: ErrorCode::Wal, .. }
        ));
        client.ping().unwrap();
        client.quit().unwrap();
    }

    #[test]
    fn v1_client_still_works_and_refuses_typed_puts() {
        let server = test_server();
        let mut client = KvClient::connect_v1(server.addr()).unwrap();
        assert_eq!(client.protocol_version(), 1);
        client.ping().unwrap();
        client.put(1, 11).unwrap();
        assert_eq!(client.get_int(1).unwrap(), Some(11));
        assert_eq!(client.add(1, 4).unwrap(), 15);
        assert_eq!(client.sum(0, 63).unwrap(), (15, 1));
        // Typed values cannot ride the line protocol.
        match client.put(2, "text").unwrap_err() {
            KvError::UnsupportedValue(message) => {
                assert!(message.contains("protocol v2"), "{message}")
            }
            other => panic!("expected UnsupportedValue, got {other}"),
        }
        // v1 batches and transfers still work end to end.
        let replies = client.batch(&[BatchOp::Add(1, 1), BatchOp::Get(1)]).unwrap();
        assert_eq!(replies[0], Reply::Value(Value::Int(16)));
        client.transfer(1, 9, 5).unwrap();
        assert_eq!(client.get_int(9).unwrap(), Some(5));
        // Error codes classify from the v1 message text.
        match client.snapshot().unwrap_err() {
            KvError::Server { code, message } => {
                assert_eq!(code, ErrorCode::Wal, "{message}");
            }
            other => panic!("expected WAL-classified error, got {other}"),
        }
        client.quit().unwrap();
    }

    #[test]
    fn batches_execute_atomically_and_report_per_op() {
        let server = test_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        client.put(10, 100).unwrap();
        let replies = client
            .batch(&[
                BatchOp::Add(10, -40),
                BatchOp::Add(11, 40),
                BatchOp::Get(10),
                BatchOp::Sum(0, 63),
                BatchOp::Del(12),
                BatchOp::Range(10, 11),
            ])
            .unwrap();
        assert_eq!(
            replies,
            vec![
                Reply::Value(Value::Int(60)),
                Reply::Value(Value::Int(40)),
                Reply::Value(Value::Int(60)),
                Reply::Sum(100, 2),
                Reply::OkN(0),
                Reply::Range(vec![(10, Value::Int(60)), (11, Value::Int(40))]),
            ]
        );
        client.transfer(10, 11, 10).unwrap();
        assert_eq!(client.sum(0, 63).unwrap(), (100, 2));
        assert_eq!(client.get_int(10).unwrap(), Some(50));
        let stats = client.stats().unwrap();
        assert!(stats.commits > 0);
        assert!(stats.batches >= 2);
        assert!(stats.cells_allocated >= 2, "{stats:?}");
        assert_eq!(stats.overflow_per_shard.len(), 4, "{stats:?}");
        // Churn a far-out (overflow) key: its cell must show up as freed
        // (or at worst still in limbo) in the next STATS reply.
        client.put(5_000_000, 1).unwrap();
        assert!(client.del(5_000_000).unwrap());
        let after = client.stats().unwrap();
        assert!(
            after.cells_freed + after.limbo >= 1,
            "deleted overflow cell must be reclaimed or in limbo: {after:?}"
        );
        assert!(after.cells_allocated > stats.cells_allocated, "{after:?}");
        client.quit().unwrap();
    }

    #[test]
    fn batch_builder_is_fluent_and_atomic() {
        let server = test_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        let builder = client
            .batch_builder()
            .put(1, 100)
            .put(2, "two\nlines")
            .add(1, -30)
            .get(2)
            .sum(0, 1)
            .del(3)
            .range(0, 2);
        assert_eq!(builder.len(), 7);
        assert!(!builder.is_empty());
        let replies = builder.run().unwrap();
        assert_eq!(replies[2], Reply::Value(Value::Int(70)));
        assert_eq!(replies[3], Reply::Value(Value::Str("two\nlines".into())));
        assert_eq!(replies[4], Reply::Sum(70, 1));
        assert_eq!(client.get_int(1).unwrap(), Some(70));
        client.quit().unwrap();
    }

    #[test]
    fn type_error_aborts_the_whole_batch() {
        let server = test_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        client.put(1, 100).unwrap();
        client.put(2, "not a number").unwrap();
        // ADD on the string key fails the batch as a whole: the PUT queued
        // before it must NOT have applied.
        let err = client
            .batch_builder()
            .put(3, 300)
            .add(2, 5)
            .run()
            .unwrap_err();
        match err {
            KvError::Server { code, message } => {
                assert_eq!(code, ErrorCode::Type, "{message}");
                assert!(message.contains("nothing executed"), "{message}");
            }
            other => panic!("expected TYPE error, got {other}"),
        }
        assert_eq!(client.get(3).unwrap(), None, "aborted batch must commit nothing");
        assert_eq!(client.get_int(1).unwrap(), Some(100));
        client.quit().unwrap();
    }

    #[test]
    fn transfer_onto_a_typed_account_fails_without_moving_money() {
        let server = test_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        client.put(1, 50).unwrap();
        client.put(2, "not money").unwrap();
        match client.transfer(1, 2, 5).unwrap_err() {
            KvError::Server { code, message } => {
                assert_eq!(code, ErrorCode::Type, "{message}");
                assert!(message.contains("str"), "{message}");
            }
            other => panic!("expected TYPE error, got {other}"),
        }
        // The whole batch aborted: the debit did NOT apply — value is
        // conserved even when a transfer hits a mistyped account.
        assert_eq!(client.get_int(1).unwrap(), Some(50));
        assert_eq!(client.get_str(2).unwrap().as_deref(), Some("not money"));
        client.quit().unwrap();
    }

    #[test]
    fn metrics_and_slowlog_round_trip_on_both_protocols() {
        let server = test_server();
        for v1 in [false, true] {
            let mut client = if v1 {
                KvClient::connect_v1(server.addr()).unwrap()
            } else {
                KvClient::connect(server.addr()).unwrap()
            };
            for key in 0..50 {
                client.put(key, key).unwrap();
            }
            client.get(1).unwrap();
            client.transfer(1, 2, 1).unwrap();

            let metrics = client.metrics().unwrap();
            assert!(metrics.counter("stm_kv_requests_total") >= 51, "{}", metrics.text);
            assert!(metrics.value("stm_commits_total").unwrap() > 0);
            assert!(metrics
                .value(r#"stm_aborts_total{cause="killed_by_enemy"}"#)
                .is_some());
            // The per-op histograms reassemble: folding every op label
            // together must dominate any single op's series, and the
            // histogram mass must match the op counts we drove.
            let all_ops = metrics.histogram("stm_kv_op_latency_us").unwrap();
            let puts = metrics
                .histogram(r#"stm_kv_op_latency_us{op="PUT"}"#)
                .unwrap();
            assert!(puts.count >= 50, "{}", metrics.text);
            assert!(all_ops.count > puts.count, "{}", metrics.text);
            assert_eq!(puts.buckets.iter().sum::<u64>(), puts.count);
            assert!(all_ops.quantile(1.0) >= puts.quantile(0.5));

            let slow = client.slowlog(10).unwrap();
            assert!(slow.len() <= 10);
            for entry in &slow {
                assert!(entry.contains("op="), "{entry}");
                assert!(entry.contains("wall_us="), "{entry}");
            }
            assert!(client.slowlog(0).unwrap().is_empty());
            client.quit().unwrap();
        }
    }

    #[test]
    fn mixed_v1_and_v2_clients_share_one_keyspace() {
        let server = test_server();
        let mut v2 = KvClient::connect(server.addr()).unwrap();
        let mut v1 = KvClient::connect_v1(server.addr()).unwrap();
        v2.put(1, 10).unwrap();
        assert_eq!(v1.get_int(1).unwrap(), Some(10));
        v1.put(2, 20).unwrap();
        assert_eq!(v2.get_int(2).unwrap(), Some(20));
        assert_eq!(v1.sum(0, 63).unwrap(), v2.sum(0, 63).unwrap());
        v1.quit().unwrap();
        v2.quit().unwrap();
    }
}
