//! A small blocking client for the `stm-kv` protocol.
//!
//! One [`KvClient`] owns one TCP connection and issues one request at a
//! time (batches are pipelined: all batch lines are written in one syscall,
//! then all replies are read back). The client is used by the integration
//! tests, the `stm_kv_demo` example, and the closed-loop network load
//! generator in `stm-bench`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{parse_reply, render_request, Reply, Request};

/// A data operation inside a [`KvClient::batch`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Read one key.
    Get(i64),
    /// Store a value.
    Put(i64, i64),
    /// Remove a key.
    Del(i64),
    /// Add a delta to a key's value.
    Add(i64, i64),
    /// Keys and values in `lo..=hi`.
    Range(i64, i64),
    /// Sum + count of the values in `lo..=hi`.
    Sum(i64, i64),
}

impl BatchOp {
    fn to_request(&self) -> Request {
        match *self {
            BatchOp::Get(k) => Request::Get(k),
            BatchOp::Put(k, v) => Request::Put(k, v),
            BatchOp::Del(k) => Request::Del(k),
            BatchOp::Add(k, d) => Request::Add(k, d),
            BatchOp::Range(lo, hi) => Request::Range(lo, hi),
            BatchOp::Sum(lo, hi) => Request::Sum(lo, hi),
        }
    }
}

/// The parsed payload of a `STATS` reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Committed transaction attempts on the server's STM.
    pub commits: u64,
    /// Aborted transaction attempts on the server's STM.
    pub aborts: u64,
    /// Single data requests executed.
    pub requests: u64,
    /// `BEGIN`/`EXEC` batches executed.
    pub batches: u64,
    /// Aborted attempts attributed to client requests.
    pub retries: u64,
    /// `ERR` replies sent.
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
}

/// The parsed payload of a `WALSTATS` reply (durable servers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    /// Fsync policy label (`every`, `n=<count>`, `ms=<millis>`).
    pub policy: String,
    /// Next commit sequence number the log will assign.
    pub next_seq: u64,
    /// Highest sequence number covered by an fsync.
    pub durable_seq: u64,
    /// Records appended since the server started.
    pub records: u64,
    /// Bytes written to segment files since the server started.
    pub bytes: u64,
    /// fsync calls issued since the server started.
    pub fsyncs: u64,
    /// Segment files on disk.
    pub segments: u64,
    /// Snapshots written since the server started.
    pub snapshots: u64,
    /// Sequence number of the latest snapshot (0 = none).
    pub last_snapshot_seq: u64,
    /// Records appended since the latest snapshot.
    pub since_snapshot: u64,
    /// Whether the server's log writer stopped on an unrecoverable
    /// filesystem error (durability disabled from that point).
    pub failed: bool,
}

/// A blocking connection to an `stm-kv` server.
#[derive(Debug)]
pub struct KvClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn proto_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn parse_counter_pair(pair: &str) -> io::Result<(&str, u64)> {
    let (key, value) = pair
        .split_once('=')
        .ok_or_else(|| proto_err(format!("malformed counter pair '{pair}'")))?;
    let value: u64 = value
        .parse()
        .map_err(|_| proto_err(format!("malformed counter value '{pair}'")))?;
    Ok((key, value))
}

impl KvClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<KvClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(KvClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_reply_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    fn read_reply(&mut self) -> io::Result<Reply> {
        let line = self.read_reply_line()?;
        parse_reply(&line).map_err(proto_err)
    }

    /// Sends one request and reads one reply, surfacing `ERR` as an error.
    fn roundtrip(&mut self, request: &Request) -> io::Result<Reply> {
        self.send_line(&render_request(request))?;
        match self.read_reply()? {
            Reply::Err(message) => Err(proto_err(format!("server error: {message}"))),
            reply => Ok(reply),
        }
    }

    /// Reads one key.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn get(&mut self, key: i64) -> io::Result<Option<i64>> {
        match self.roundtrip(&Request::Get(key))? {
            Reply::Value(v) => Ok(Some(v)),
            Reply::Nil => Ok(None),
            other => Err(proto_err(format!("unexpected reply {other:?} to GET"))),
        }
    }

    /// Stores a value.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn put(&mut self, key: i64, value: i64) -> io::Result<()> {
        match self.roundtrip(&Request::Put(key, value))? {
            Reply::Ok => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?} to PUT"))),
        }
    }

    /// Removes a key; `true` when it was present.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn del(&mut self, key: i64) -> io::Result<bool> {
        match self.roundtrip(&Request::Del(key))? {
            Reply::OkN(n) => Ok(n != 0),
            other => Err(proto_err(format!("unexpected reply {other:?} to DEL"))),
        }
    }

    /// Adds `delta` to a key's value, returning the new value.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn add(&mut self, key: i64, delta: i64) -> io::Result<i64> {
        match self.roundtrip(&Request::Add(key, delta))? {
            Reply::Value(v) => Ok(v),
            other => Err(proto_err(format!("unexpected reply {other:?} to ADD"))),
        }
    }

    /// The present keys in `lo..=hi` with their values.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn range(&mut self, lo: i64, hi: i64) -> io::Result<Vec<(i64, i64)>> {
        match self.roundtrip(&Request::Range(lo, hi))? {
            Reply::Range(pairs) => Ok(pairs),
            other => Err(proto_err(format!("unexpected reply {other:?} to RANGE"))),
        }
    }

    /// Atomic `(sum, count)` of the values in `lo..=hi`.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn sum(&mut self, lo: i64, hi: i64) -> io::Result<(i64, usize)> {
        match self.roundtrip(&Request::Sum(lo, hi))? {
            Reply::Sum(total, count) => Ok((total, count)),
            other => Err(proto_err(format!("unexpected reply {other:?} to SUM"))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?} to PING"))),
        }
    }

    /// Fetches and parses the server's `STATS` counters.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed `STATS` lines.
    pub fn stats(&mut self) -> io::Result<ServerStatsSnapshot> {
        self.send_line("STATS")?;
        let line = self.read_reply_line()?;
        let payload = line
            .strip_prefix("STATS ")
            .ok_or_else(|| proto_err(format!("unexpected reply '{line}' to STATS")))?;
        let mut stats = ServerStatsSnapshot::default();
        for pair in payload.split_whitespace() {
            let (key, value) = parse_counter_pair(pair)?;
            match key {
                "commits" => stats.commits = value,
                "aborts" => stats.aborts = value,
                "requests" => stats.requests = value,
                "batches" => stats.batches = value,
                "retries" => stats.retries = value,
                "errors" => stats.errors = value,
                "connections" => stats.connections = value,
                _ => {} // forward-compatible: ignore unknown counters
            }
        }
        Ok(stats)
    }

    /// Forces a point-in-time snapshot on a durable server, returning the
    /// cut sequence number and the number of keys persisted.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies (e.g. a volatile server).
    pub fn snapshot(&mut self) -> io::Result<(u64, usize)> {
        match self.roundtrip(&Request::Snapshot)? {
            Reply::Snapshot(seq, keys) => Ok((seq, keys)),
            other => Err(proto_err(format!("unexpected reply {other:?} to SNAPSHOT"))),
        }
    }

    /// Fetches and parses a durable server's `WALSTATS` counters.
    ///
    /// # Errors
    ///
    /// I/O failures, server `ERR` replies (e.g. a volatile server), and
    /// malformed `WALSTATS` lines.
    pub fn walstats(&mut self) -> io::Result<WalStatsSnapshot> {
        self.send_line("WALSTATS")?;
        let line = self.read_reply_line()?;
        if let Some(message) = line.strip_prefix("ERR ") {
            return Err(proto_err(format!("server error: {message}")));
        }
        let payload = line
            .strip_prefix("WALSTATS ")
            .ok_or_else(|| proto_err(format!("unexpected reply '{line}' to WALSTATS")))?;
        let mut stats = WalStatsSnapshot::default();
        for pair in payload.split_whitespace() {
            // `policy` is the one non-numeric pair (its value may itself
            // contain '=', e.g. `policy=n=64`).
            if let Some(policy) = pair.strip_prefix("policy=") {
                stats.policy = policy.to_string();
                continue;
            }
            let (key, value) = parse_counter_pair(pair)?;
            match key {
                "next_seq" => stats.next_seq = value,
                "durable_seq" => stats.durable_seq = value,
                "records" => stats.records = value,
                "bytes" => stats.bytes = value,
                "fsyncs" => stats.fsyncs = value,
                "segments" => stats.segments = value,
                "snapshots" => stats.snapshots = value,
                "last_snapshot_seq" => stats.last_snapshot_seq = value,
                "since_snapshot" => stats.since_snapshot = value,
                "failed" => stats.failed = value != 0,
                _ => {} // forward-compatible: ignore unknown counters
            }
        }
        Ok(stats)
    }

    /// Executes `ops` as one atomic `BEGIN`/`EXEC` batch and returns one
    /// reply per operation. The whole batch is pipelined: every line is
    /// written before any reply is read.
    ///
    /// # Errors
    ///
    /// I/O failures, server `ERR` replies (the batch is discarded
    /// server-side), and framing violations.
    pub fn batch(&mut self, ops: &[BatchOp]) -> io::Result<Vec<Reply>> {
        let mut script = String::from("BEGIN\n");
        for op in ops {
            script.push_str(&render_request(&op.to_request()));
            script.push('\n');
        }
        script.push_str("EXEC\n");
        self.writer.write_all(script.as_bytes())?;
        self.writer.flush()?;

        // The whole batch is already on the wire, so a refused BEGIN or a
        // refused queued op must still drain every remaining pipelined reply
        // (including the EXEC response) before surfacing the error —
        // otherwise the connection's request/reply framing desyncs and every
        // later call reads some earlier op's answer.
        let mut first_error: Option<io::Error> = None;
        match self.read_reply()? {
            Reply::Ok => {}
            Reply::Err(m) => first_error = Some(proto_err(format!("BEGIN refused: {m}"))),
            other => {
                first_error = Some(proto_err(format!("unexpected reply {other:?} to BEGIN")))
            }
        }
        for op in ops {
            match self.read_reply()? {
                Reply::Queued => {}
                Reply::Err(m) => {
                    first_error.get_or_insert_with(|| {
                        proto_err(format!("batch op {op:?} refused: {m}"))
                    });
                }
                other => {
                    first_error.get_or_insert_with(|| {
                        proto_err(format!("unexpected reply {other:?} to {op:?}"))
                    });
                }
            }
        }
        let header = self.read_reply_line()?;
        if let Some(error) = first_error {
            // The server poisons a failed batch, so its EXEC reply is a
            // single ERR line — but drain result lines defensively if it
            // somehow executed.
            if let Some(count) = header
                .strip_prefix("EXEC ")
                .and_then(|n| n.parse::<usize>().ok())
            {
                for _ in 0..count {
                    self.read_reply_line()?;
                }
            }
            return Err(error);
        }
        let count: usize = header
            .strip_prefix("EXEC ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| {
                proto_err(match header.strip_prefix("ERR ") {
                    Some(message) => format!("batch failed: {message}"),
                    None => format!("unexpected reply '{header}' to EXEC"),
                })
            })?;
        if count != ops.len() {
            return Err(proto_err(format!(
                "EXEC returned {count} replies for {} ops",
                ops.len()
            )));
        }
        let mut replies = Vec::with_capacity(count);
        for _ in 0..count {
            replies.push(self.read_reply()?);
        }
        Ok(replies)
    }

    /// Atomically moves `amount` from `from` to `to` (both treated as `0`
    /// when absent) — the conservation workload's primitive, built from one
    /// `BEGIN`/`EXEC` batch of two `ADD`s.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn transfer(&mut self, from: i64, to: i64, amount: i64) -> io::Result<()> {
        let replies = self.batch(&[BatchOp::Add(from, -amount), BatchOp::Add(to, amount)])?;
        if replies.len() == 2 {
            Ok(())
        } else {
            Err(proto_err("transfer batch returned a partial reply"))
        }
    }

    /// Says goodbye and closes the connection.
    ///
    /// # Errors
    ///
    /// I/O failures before `BYE` arrives.
    pub fn quit(mut self) -> io::Result<()> {
        self.send_line("QUIT")?;
        match self.read_reply()? {
            Reply::Bye => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?} to QUIT"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{KvServer, ServerConfig};

    fn test_server() -> KvServer {
        KvServer::start(ServerConfig {
            capacity: 64,
            shards: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn typed_client_round_trips() {
        let server = test_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        client.ping().unwrap();
        assert_eq!(client.get(1).unwrap(), None);
        client.put(1, 11).unwrap();
        client.put(2, 22).unwrap();
        assert_eq!(client.get(1).unwrap(), Some(11));
        assert_eq!(client.add(1, -1).unwrap(), 10);
        assert_eq!(client.range(0, 63).unwrap(), vec![(1, 10), (2, 22)]);
        assert_eq!(client.sum(0, 63).unwrap(), (32, 2));
        assert!(client.del(2).unwrap());
        assert!(!client.del(2).unwrap());
        // The keyspace is dynamic: any i64 key is addressable.
        assert_eq!(client.get(1_000_000).unwrap(), None);
        client.put(-5, 7).unwrap();
        assert_eq!(client.get(-5).unwrap(), Some(7));
        assert!(client.del(-5).unwrap());
        // Durability commands surface the server's polite refusal when the
        // server is volatile — and the connection survives the ERR.
        let err = client.snapshot().unwrap_err();
        assert!(err.to_string().contains("durability disabled"), "{err}");
        let err = client.walstats().unwrap_err();
        assert!(err.to_string().contains("durability disabled"), "{err}");
        client.ping().unwrap();
        client.quit().unwrap();
    }

    #[test]
    fn batches_execute_atomically_and_report_per_op() {
        let server = test_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        client.put(10, 100).unwrap();
        let replies = client
            .batch(&[
                BatchOp::Add(10, -40),
                BatchOp::Add(11, 40),
                BatchOp::Get(10),
                BatchOp::Sum(0, 63),
                BatchOp::Del(12),
                BatchOp::Range(10, 11),
            ])
            .unwrap();
        assert_eq!(
            replies,
            vec![
                Reply::Value(60),
                Reply::Value(40),
                Reply::Value(60),
                Reply::Sum(100, 2),
                Reply::OkN(0),
                Reply::Range(vec![(10, 60), (11, 40)]),
            ]
        );
        client.transfer(10, 11, 10).unwrap();
        assert_eq!(client.sum(0, 63).unwrap(), (100, 2));
        assert_eq!(client.get(10).unwrap(), Some(50));
        let stats = client.stats().unwrap();
        assert!(stats.commits > 0);
        assert!(stats.batches >= 2);
        client.quit().unwrap();
    }
}
