//! A small blocking client for the `stm-kv` protocol.
//!
//! One [`KvClient`] owns one TCP connection and issues one request at a
//! time (batches are pipelined: all batch lines are written in one syscall,
//! then all replies are read back). The client is used by the integration
//! tests, the `stm_kv_demo` example, and the closed-loop network load
//! generator in `stm-bench`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{parse_reply, render_request, Reply, Request};

/// A data operation inside a [`KvClient::batch`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Read one key.
    Get(i64),
    /// Store a value.
    Put(i64, i64),
    /// Remove a key.
    Del(i64),
    /// Add a delta to a key's value.
    Add(i64, i64),
    /// Keys and values in `lo..=hi`.
    Range(i64, i64),
    /// Sum + count of the values in `lo..=hi`.
    Sum(i64, i64),
}

impl BatchOp {
    fn to_request(&self) -> Request {
        match *self {
            BatchOp::Get(k) => Request::Get(k),
            BatchOp::Put(k, v) => Request::Put(k, v),
            BatchOp::Del(k) => Request::Del(k),
            BatchOp::Add(k, d) => Request::Add(k, d),
            BatchOp::Range(lo, hi) => Request::Range(lo, hi),
            BatchOp::Sum(lo, hi) => Request::Sum(lo, hi),
        }
    }
}

/// The parsed payload of a `STATS` reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Committed transaction attempts on the server's STM.
    pub commits: u64,
    /// Aborted transaction attempts on the server's STM.
    pub aborts: u64,
    /// Single data requests executed.
    pub requests: u64,
    /// `BEGIN`/`EXEC` batches executed.
    pub batches: u64,
    /// Aborted attempts attributed to client requests.
    pub retries: u64,
    /// `ERR` replies sent.
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
}

/// A blocking connection to an `stm-kv` server.
#[derive(Debug)]
pub struct KvClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn proto_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

impl KvClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<KvClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(KvClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_reply_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    fn read_reply(&mut self) -> io::Result<Reply> {
        let line = self.read_reply_line()?;
        parse_reply(&line).map_err(proto_err)
    }

    /// Sends one request and reads one reply, surfacing `ERR` as an error.
    fn roundtrip(&mut self, request: &Request) -> io::Result<Reply> {
        self.send_line(&render_request(request))?;
        match self.read_reply()? {
            Reply::Err(message) => Err(proto_err(format!("server error: {message}"))),
            reply => Ok(reply),
        }
    }

    /// Reads one key.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn get(&mut self, key: i64) -> io::Result<Option<i64>> {
        match self.roundtrip(&Request::Get(key))? {
            Reply::Value(v) => Ok(Some(v)),
            Reply::Nil => Ok(None),
            other => Err(proto_err(format!("unexpected reply {other:?} to GET"))),
        }
    }

    /// Stores a value.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn put(&mut self, key: i64, value: i64) -> io::Result<()> {
        match self.roundtrip(&Request::Put(key, value))? {
            Reply::Ok => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?} to PUT"))),
        }
    }

    /// Removes a key; `true` when it was present.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn del(&mut self, key: i64) -> io::Result<bool> {
        match self.roundtrip(&Request::Del(key))? {
            Reply::OkN(n) => Ok(n != 0),
            other => Err(proto_err(format!("unexpected reply {other:?} to DEL"))),
        }
    }

    /// Adds `delta` to a key's value, returning the new value.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn add(&mut self, key: i64, delta: i64) -> io::Result<i64> {
        match self.roundtrip(&Request::Add(key, delta))? {
            Reply::Value(v) => Ok(v),
            other => Err(proto_err(format!("unexpected reply {other:?} to ADD"))),
        }
    }

    /// The present keys in `lo..=hi` with their values.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn range(&mut self, lo: i64, hi: i64) -> io::Result<Vec<(i64, i64)>> {
        match self.roundtrip(&Request::Range(lo, hi))? {
            Reply::Range(pairs) => Ok(pairs),
            other => Err(proto_err(format!("unexpected reply {other:?} to RANGE"))),
        }
    }

    /// Atomic `(sum, count)` of the values in `lo..=hi`.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn sum(&mut self, lo: i64, hi: i64) -> io::Result<(i64, usize)> {
        match self.roundtrip(&Request::Sum(lo, hi))? {
            Reply::Sum(total, count) => Ok((total, count)),
            other => Err(proto_err(format!("unexpected reply {other:?} to SUM"))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?} to PING"))),
        }
    }

    /// Fetches and parses the server's `STATS` counters.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed `STATS` lines.
    pub fn stats(&mut self) -> io::Result<ServerStatsSnapshot> {
        self.send_line("STATS")?;
        let line = self.read_reply_line()?;
        let payload = line
            .strip_prefix("STATS ")
            .ok_or_else(|| proto_err(format!("unexpected reply '{line}' to STATS")))?;
        let mut stats = ServerStatsSnapshot::default();
        for pair in payload.split_whitespace() {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(proto_err(format!("malformed STATS pair '{pair}'")));
            };
            let value: u64 = value
                .parse()
                .map_err(|_| proto_err(format!("malformed STATS value '{pair}'")))?;
            match key {
                "commits" => stats.commits = value,
                "aborts" => stats.aborts = value,
                "requests" => stats.requests = value,
                "batches" => stats.batches = value,
                "retries" => stats.retries = value,
                "errors" => stats.errors = value,
                "connections" => stats.connections = value,
                _ => {} // forward-compatible: ignore unknown counters
            }
        }
        Ok(stats)
    }

    /// Executes `ops` as one atomic `BEGIN`/`EXEC` batch and returns one
    /// reply per operation. The whole batch is pipelined: every line is
    /// written before any reply is read.
    ///
    /// # Errors
    ///
    /// I/O failures, server `ERR` replies (the batch is discarded
    /// server-side), and framing violations.
    pub fn batch(&mut self, ops: &[BatchOp]) -> io::Result<Vec<Reply>> {
        let mut script = String::from("BEGIN\n");
        for op in ops {
            script.push_str(&render_request(&op.to_request()));
            script.push('\n');
        }
        script.push_str("EXEC\n");
        self.writer.write_all(script.as_bytes())?;
        self.writer.flush()?;

        // The whole batch is already on the wire, so a refused BEGIN or a
        // refused queued op must still drain every remaining pipelined reply
        // (including the EXEC response) before surfacing the error —
        // otherwise the connection's request/reply framing desyncs and every
        // later call reads some earlier op's answer.
        let mut first_error: Option<io::Error> = None;
        match self.read_reply()? {
            Reply::Ok => {}
            Reply::Err(m) => first_error = Some(proto_err(format!("BEGIN refused: {m}"))),
            other => {
                first_error = Some(proto_err(format!("unexpected reply {other:?} to BEGIN")))
            }
        }
        for op in ops {
            match self.read_reply()? {
                Reply::Queued => {}
                Reply::Err(m) => {
                    first_error.get_or_insert_with(|| {
                        proto_err(format!("batch op {op:?} refused: {m}"))
                    });
                }
                other => {
                    first_error.get_or_insert_with(|| {
                        proto_err(format!("unexpected reply {other:?} to {op:?}"))
                    });
                }
            }
        }
        let header = self.read_reply_line()?;
        if let Some(error) = first_error {
            // The server poisons a failed batch, so its EXEC reply is a
            // single ERR line — but drain result lines defensively if it
            // somehow executed.
            if let Some(count) = header
                .strip_prefix("EXEC ")
                .and_then(|n| n.parse::<usize>().ok())
            {
                for _ in 0..count {
                    self.read_reply_line()?;
                }
            }
            return Err(error);
        }
        let count: usize = header
            .strip_prefix("EXEC ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| {
                proto_err(match header.strip_prefix("ERR ") {
                    Some(message) => format!("batch failed: {message}"),
                    None => format!("unexpected reply '{header}' to EXEC"),
                })
            })?;
        if count != ops.len() {
            return Err(proto_err(format!(
                "EXEC returned {count} replies for {} ops",
                ops.len()
            )));
        }
        let mut replies = Vec::with_capacity(count);
        for _ in 0..count {
            replies.push(self.read_reply()?);
        }
        Ok(replies)
    }

    /// Atomically moves `amount` from `from` to `to` (both treated as `0`
    /// when absent) — the conservation workload's primitive, built from one
    /// `BEGIN`/`EXEC` batch of two `ADD`s.
    ///
    /// # Errors
    ///
    /// I/O failures and server `ERR` replies.
    pub fn transfer(&mut self, from: i64, to: i64, amount: i64) -> io::Result<()> {
        let replies = self.batch(&[BatchOp::Add(from, -amount), BatchOp::Add(to, amount)])?;
        if replies.len() == 2 {
            Ok(())
        } else {
            Err(proto_err("transfer batch returned a partial reply"))
        }
    }

    /// Says goodbye and closes the connection.
    ///
    /// # Errors
    ///
    /// I/O failures before `BYE` arrives.
    pub fn quit(mut self) -> io::Result<()> {
        self.send_line("QUIT")?;
        match self.read_reply()? {
            Reply::Bye => Ok(()),
            other => Err(proto_err(format!("unexpected reply {other:?} to QUIT"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{KvServer, ServerConfig};

    fn test_server() -> KvServer {
        KvServer::start(ServerConfig {
            capacity: 64,
            shards: 4,
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn typed_client_round_trips() {
        let server = test_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        client.ping().unwrap();
        assert_eq!(client.get(1).unwrap(), None);
        client.put(1, 11).unwrap();
        client.put(2, 22).unwrap();
        assert_eq!(client.get(1).unwrap(), Some(11));
        assert_eq!(client.add(1, -1).unwrap(), 10);
        assert_eq!(client.range(0, 63).unwrap(), vec![(1, 10), (2, 22)]);
        assert_eq!(client.sum(0, 63).unwrap(), (32, 2));
        assert!(client.del(2).unwrap());
        assert!(!client.del(2).unwrap());
        let err = client.get(1000).unwrap_err();
        assert!(err.to_string().contains("outside keyspace"), "{err}");
        // The connection survives an ERR.
        client.ping().unwrap();
        client.quit().unwrap();
    }

    #[test]
    fn failed_batch_applies_nothing_and_connection_stays_in_sync() {
        let server = test_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        client.put(3, 30).unwrap();
        // First op is out of range: the server poisons the batch, so the
        // second (valid) ADD must NOT execute, and the pipelined replies
        // must be fully drained.
        let err = client
            .batch(&[BatchOp::Add(1000, -10), BatchOp::Add(3, 10)])
            .unwrap_err();
        assert!(err.to_string().contains("outside keyspace"), "{err}");
        // All-or-nothing: key 3 is untouched by the failed batch.
        assert_eq!(client.get(3).unwrap(), Some(30));
        // Framing survives: the next requests get their own replies.
        client.ping().unwrap();
        assert_eq!(client.sum(0, 63).unwrap(), (30, 1));
        // And a fresh batch on the same connection works.
        let replies = client.batch(&[BatchOp::Add(3, 1)]).unwrap();
        assert_eq!(replies, vec![Reply::Value(31)]);
        client.quit().unwrap();
    }

    #[test]
    fn batches_execute_atomically_and_report_per_op() {
        let server = test_server();
        let mut client = KvClient::connect(server.addr()).unwrap();
        client.put(10, 100).unwrap();
        let replies = client
            .batch(&[
                BatchOp::Add(10, -40),
                BatchOp::Add(11, 40),
                BatchOp::Get(10),
                BatchOp::Sum(0, 63),
                BatchOp::Del(12),
                BatchOp::Range(10, 11),
            ])
            .unwrap();
        assert_eq!(
            replies,
            vec![
                Reply::Value(60),
                Reply::Value(40),
                Reply::Value(60),
                Reply::Sum(100, 2),
                Reply::OkN(0),
                Reply::Range(vec![(10, 60), (11, 40)]),
            ]
        );
        client.transfer(10, 11, 10).unwrap();
        assert_eq!(client.sum(0, 63).unwrap(), (100, 2));
        assert_eq!(client.get(10).unwrap(), Some(50));
        let stats = client.stats().unwrap();
        assert!(stats.commits > 0);
        assert!(stats.batches >= 2);
        client.quit().unwrap();
    }
}
