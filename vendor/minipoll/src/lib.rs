//! minipoll — a minimal, vendored, mio-style readiness shim.
//!
//! One type matters: [`Poller`]. Register file descriptors with a [`Token`]
//! and an [`Interest`] (readable / writable / both), then [`Poller::wait`]
//! blocks until the kernel reports readiness and hands back [`Event`]s
//! carrying the tokens. Two backends implement the same semantics:
//!
//! * **epoll** (Linux, the default): readiness state lives in the kernel,
//!   `wait` cost scales with ready fds, and edge-triggering is native.
//! * **poll(2)** (portable fallback, also selectable for differential
//!   testing): a user-space registration table rebuilt into a `pollfd`
//!   array per wait, with edge-triggering emulated by tracking rising
//!   edges across calls.
//!
//! Design rules, in order: correctness over features (no timerfd, no
//! oneshot — callers compose those from sockets; the one extra primitive
//! is the Linux `eventfd` behind [`net::waker`], with a portable
//! socketpair fallback), all `unsafe` confined to `sys.rs`, and zero
//! dependencies so the crate can live in the vendor tree.

mod sys;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

/// Caller-chosen identifier attached to a registration and echoed back in
/// every [`Event`] for that fd. The poller never interprets it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest(u8);

impl Interest {
    pub const READABLE: Interest = Interest(0b01);
    pub const WRITABLE: Interest = Interest(0b10);
    pub const BOTH: Interest = Interest(0b11);

    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }

    /// Union of two interests (e.g. `READABLE | WRITABLE`-style composition
    /// without implementing the operator traits).
    pub fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

/// Level- vs edge-triggered delivery.
///
/// * `Level`: an event fires on every wait while the condition holds.
/// * `Edge`: an event fires when the condition newly becomes true; the
///   caller must drain to `WouldBlock` on every event or it will stall.
///   The epoll backend uses native `EPOLLET`; the poll backend approximates
///   edge with level semantics (duplicates possible, misses never), which a
///   drain-to-`WouldBlock` consumer absorbs for free.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trigger {
    Level,
    Edge,
}

/// One readiness notification from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    /// Peer hangup or error: the fd should be drained and closed. `readable`
    /// is always set alongside so a read loop observes the EOF/error.
    pub closed: bool,
}

/// Which syscall family backs a [`Poller`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Linux epoll. Falls back to [`Backend::Poll`] on non-Linux targets.
    Epoll,
    /// Portable `poll(2)`.
    Poll,
}

enum BackendImpl {
    #[cfg(target_os = "linux")]
    Epoll(sys::EpollBackend),
    Poll(sys::PollBackend),
}

/// A readiness poller: the single entry point of this crate.
pub struct Poller {
    backend: BackendImpl,
}

impl Poller {
    /// The default poller: epoll on Linux, `poll(2)` elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Poller::with_backend(Backend::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::with_backend(Backend::Poll)
        }
    }

    /// A poller over a specific backend — the hook the differential tests
    /// use to run identical scenarios through both implementations.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let backend = match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => BackendImpl::Epoll(sys::EpollBackend::new()?),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => BackendImpl::Poll(sys::PollBackend::new()),
            Backend::Poll => BackendImpl::Poll(sys::PollBackend::new()),
        };
        Ok(Poller { backend })
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(_) => Backend::Epoll,
            BackendImpl::Poll(_) => Backend::Poll,
        }
    }

    /// Start watching `source` for `interest`, tagging its events `token`.
    /// The fd must stay open until [`Poller::deregister`]; registering the
    /// same fd twice is an error (use [`Poller::reregister`]).
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
        trigger: Trigger,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(b) => b.register(fd, token, interest, trigger),
            BackendImpl::Poll(b) => b.register(fd, token, interest, trigger),
        }
    }

    /// Change the token, interest, or trigger of an existing registration.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
        trigger: Trigger,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(b) => b.reregister(fd, token, interest, trigger),
            BackendImpl::Poll(b) => b.reregister(fd, token, interest, trigger),
        }
    }

    /// Stop watching `source`. Must be called before the fd is closed, or
    /// (poll backend) a stale table entry lingers until this call.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(b) => b.deregister(fd),
            BackendImpl::Poll(b) => b.deregister(fd),
        }
    }

    /// Raw-fd variant of [`Poller::deregister`] for callers that have
    /// already moved the owning handle (e.g. a connection slab dropping an
    /// entry after the stream is consumed).
    pub fn deregister_fd(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(b) => b.deregister(fd),
            BackendImpl::Poll(b) => b.deregister(fd),
        }
    }

    /// Block until readiness (or `timeout`), appending up to `capacity`
    /// events to `events` (which is cleared first). Returns the number of
    /// events delivered; `Ok(0)` means timeout **or** a spurious wakeup
    /// (EINTR) — callers must treat both as "re-check state and wait
    /// again", never as an error.
    pub fn wait(
        &self,
        events: &mut Vec<Event>,
        capacity: usize,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll(b) => b.wait(events, capacity, timeout),
            BackendImpl::Poll(b) => b.wait(events, capacity, timeout),
        }
    }
}

/// Non-blocking TCP helpers shared by the event-loop server and its tests.
pub mod net {
    use super::*;

    /// Bind a listener and switch it to non-blocking accept mode.
    pub fn listen_nonblocking(addr: SocketAddr) -> io::Result<TcpListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(listener)
    }

    /// Accept one pending connection, returning `Ok(None)` when the backlog
    /// is empty (`WouldBlock`) and swallowing per-connection aborts
    /// (ECONNABORTED, EINTR) that a healthy accept loop must ignore.
    pub fn accept_nonblocking(
        listener: &TcpListener,
    ) -> io::Result<Option<(TcpStream, SocketAddr)>> {
        match listener.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(true)?;
                stream.set_nodelay(true).ok();
                Ok(Some((stream, peer)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e)
                if e.kind() == io::ErrorKind::ConnectionAborted
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// A cross-thread wakeup channel for a thread blocked in
    /// [`Poller::wait`]: register the receiving half readable, then
    /// [`Waker::wake`] from any thread makes the next wait return.
    ///
    /// On Linux this is a single `eventfd` — one fd instead of a
    /// socketpair's two, and wakes coalesce in the kernel counter. The
    /// portable socketpair construction is kept as the fallback for other
    /// targets (and as [`socket_waker`] for differential testing).
    pub struct Waker {
        inner: WakerHalf,
    }

    /// The pollable half of a [`Waker`]; register it with the poller and
    /// call [`WakeReceiver::drain`] whenever its token fires.
    pub struct WakeReceiver {
        inner: ReceiverHalf,
    }

    enum WakerHalf {
        #[cfg(target_os = "linux")]
        EventFd(std::sync::Arc<crate::sys::EventFd>),
        Socket(std::os::unix::net::UnixStream),
    }

    enum ReceiverHalf {
        #[cfg(target_os = "linux")]
        EventFd(std::sync::Arc<crate::sys::EventFd>),
        Socket(std::os::unix::net::UnixStream),
    }

    /// Create a connected waker pair: `eventfd` on Linux, a non-blocking
    /// `UnixStream` pair elsewhere.
    pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
        #[cfg(target_os = "linux")]
        {
            let fd = std::sync::Arc::new(crate::sys::EventFd::new()?);
            Ok((
                Waker {
                    inner: WakerHalf::EventFd(std::sync::Arc::clone(&fd)),
                },
                WakeReceiver {
                    inner: ReceiverHalf::EventFd(fd),
                },
            ))
        }
        #[cfg(not(target_os = "linux"))]
        {
            socket_waker()
        }
    }

    /// Create a waker pair over the portable socketpair construction on
    /// every target — the differential-testing hook for [`waker`], and the
    /// fallback it uses off Linux.
    pub fn socket_waker() -> io::Result<(Waker, WakeReceiver)> {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((
            Waker {
                inner: WakerHalf::Socket(tx),
            },
            WakeReceiver {
                inner: ReceiverHalf::Socket(rx),
            },
        ))
    }

    impl Waker {
        /// Make the paired poller's next (or current) wait return. Multiple
        /// wakes coalesce; a saturated eventfd counter or full socket
        /// buffer already guarantees a pending wakeup, so `WouldBlock` is
        /// success.
        pub fn wake(&self) -> io::Result<()> {
            match &self.inner {
                #[cfg(target_os = "linux")]
                WakerHalf::EventFd(fd) => fd.signal(),
                WakerHalf::Socket(tx) => {
                    use std::io::Write;
                    match (&*tx).write(&[1u8]) {
                        Ok(_) => Ok(()),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
                        Err(e) => Err(e),
                    }
                }
            }
        }
    }

    impl Clone for Waker {
        fn clone(&self) -> Waker {
            let inner = match &self.inner {
                #[cfg(target_os = "linux")]
                WakerHalf::EventFd(fd) => WakerHalf::EventFd(std::sync::Arc::clone(fd)),
                WakerHalf::Socket(tx) => {
                    WakerHalf::Socket(tx.try_clone().expect("clone waker socket"))
                }
            };
            Waker { inner }
        }
    }

    impl WakeReceiver {
        /// Consume all pending wakes so level-triggered pollers stop
        /// reporting the waker readable.
        pub fn drain(&self) {
            match &self.inner {
                #[cfg(target_os = "linux")]
                ReceiverHalf::EventFd(fd) => fd.drain(),
                ReceiverHalf::Socket(rx) => {
                    use std::io::Read;
                    let mut buf = [0u8; 64];
                    while matches!((&*rx).read(&mut buf), Ok(n) if n > 0) {}
                }
            }
        }
    }

    impl AsRawFd for WakeReceiver {
        fn as_raw_fd(&self) -> RawFd {
            match &self.inner {
                #[cfg(target_os = "linux")]
                ReceiverHalf::EventFd(fd) => fd.as_raw_fd(),
                ReceiverHalf::Socket(rx) => rx.as_raw_fd(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    fn nonblocking_pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    const TICK: Duration = Duration::from_millis(10);
    const PATIENCE: Duration = Duration::from_secs(5);

    /// Wait until at least one event arrives, tolerating any number of
    /// spurious `Ok(0)` returns — the contract every caller must honour.
    fn wait_some(poller: &Poller, events: &mut Vec<Event>) -> usize {
        let deadline = std::time::Instant::now() + PATIENCE;
        loop {
            let n = poller.wait(events, 64, Some(TICK)).expect("wait");
            if n > 0 {
                return n;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no event within {PATIENCE:?} on {:?}",
                poller.backend()
            );
        }
    }

    #[test]
    fn socketpair_becomes_readable_on_write() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (a, b) = nonblocking_pair();
            poller
                .register(&a, Token(7), Interest::READABLE, Trigger::Level)
                .unwrap();

            // Nothing written yet: a short wait reports no events.
            let mut events = Vec::new();
            let n = poller.wait(&mut events, 64, Some(TICK)).unwrap();
            assert_eq!(n, 0, "{backend:?}: readable before any write");

            (&b).write_all(b"x").unwrap();
            let n = wait_some(&poller, &mut events);
            assert_eq!(n, 1, "{backend:?}");
            assert_eq!(events[0].token, Token(7));
            assert!(events[0].readable);
            assert!(!events[0].writable);
        }
    }

    #[test]
    fn level_trigger_repeats_until_drained() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (a, b) = nonblocking_pair();
            poller
                .register(&a, Token(1), Interest::READABLE, Trigger::Level)
                .unwrap();
            (&b).write_all(b"abc").unwrap();

            let mut events = Vec::new();
            // Level: same undrained readiness reported on consecutive waits.
            assert_eq!(wait_some(&poller, &mut events), 1, "{backend:?}");
            assert_eq!(wait_some(&poller, &mut events), 1, "{backend:?}");

            // Drain: silence. New data: readiness returns.
            let mut buf = [0u8; 16];
            while matches!((&a).read(&mut buf), Ok(n) if n > 0) {}
            let n = poller.wait(&mut events, 64, Some(TICK)).unwrap();
            assert_eq!(n, 0, "{backend:?}: drained fd still reported");
            (&b).write_all(b"d").unwrap();
            assert_eq!(wait_some(&poller, &mut events), 1, "{backend:?}");
        }
    }

    /// The edge contract every consumer must survive: after an event, drain
    /// to `WouldBlock`; events then reappear only with new data (epoll) or
    /// possibly repeat while undrained (poll's level approximation) — but
    /// are never *missed* once the fd is drained and new data arrives.
    #[test]
    fn edge_trigger_never_misses_under_drain_discipline() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (a, b) = nonblocking_pair();
            poller
                .register(&a, Token(1), Interest::READABLE, Trigger::Edge)
                .unwrap();
            let mut events = Vec::new();
            let mut buf = [0u8; 16];

            // Three rounds of write → event → drain-to-WouldBlock.
            for round in 0..3 {
                (&b).write_all(b"x").unwrap();
                assert_eq!(
                    wait_some(&poller, &mut events),
                    1,
                    "{backend:?}: round {round}"
                );
                assert_eq!(events[0].token, Token(1));
                while matches!((&a).read(&mut buf), Ok(n) if n > 0) {}
                // Drained fd is silent on both backends.
                let n = poller.wait(&mut events, 64, Some(TICK)).unwrap();
                assert_eq!(n, 0, "{backend:?}: round {round}: drained fd reported");
            }

            // Native epoll ET additionally guarantees no repeats for
            // undrained data; the poll approximation may repeat (that is
            // the documented divergence), so assert only on epoll.
            if poller.backend() == Backend::Epoll {
                (&b).write_all(b"y").unwrap();
                assert_eq!(wait_some(&poller, &mut events), 1, "{backend:?}");
                let n = poller.wait(&mut events, 64, Some(TICK)).unwrap();
                assert_eq!(n, 0, "epoll ET repeated an event without new data");
            }
        }
    }

    #[test]
    fn writable_interest_and_reregister_roundtrip() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (a, _b) = nonblocking_pair();
            // An idle socket with buffer space is immediately writable.
            poller
                .register(&a, Token(3), Interest::WRITABLE, Trigger::Level)
                .unwrap();
            let mut events = Vec::new();
            assert_eq!(wait_some(&poller, &mut events), 1, "{backend:?}");
            assert!(events[0].writable && !events[0].readable);

            // Drop write interest: silence.
            poller
                .reregister(&a, Token(3), Interest::READABLE, Trigger::Level)
                .unwrap();
            let n = poller.wait(&mut events, 64, Some(TICK)).unwrap();
            assert_eq!(n, 0, "{backend:?}: writable reported without interest");
        }
    }

    #[test]
    fn deregister_stops_events_and_double_register_errors() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (a, b) = nonblocking_pair();
            poller
                .register(&a, Token(9), Interest::READABLE, Trigger::Level)
                .unwrap();
            assert!(
                poller
                    .register(&a, Token(10), Interest::READABLE, Trigger::Level)
                    .is_err(),
                "{backend:?}: double register succeeded"
            );
            (&b).write_all(b"x").unwrap();
            poller.deregister(&a).unwrap();
            let mut events = Vec::new();
            let n = poller.wait(&mut events, 64, Some(TICK)).unwrap();
            assert_eq!(n, 0, "{backend:?}: deregistered fd still reported");
        }
    }

    #[test]
    fn peer_close_reports_closed_and_readable() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (a, b) = nonblocking_pair();
            poller
                .register(&a, Token(4), Interest::READABLE, Trigger::Level)
                .unwrap();
            drop(b);
            let mut events = Vec::new();
            assert!(wait_some(&poller, &mut events) >= 1, "{backend:?}");
            assert!(events[0].closed, "{backend:?}: hangup not flagged closed");
            assert!(events[0].readable, "{backend:?}: hangup not readable");
        }
    }

    #[test]
    fn waker_unblocks_wait_from_another_thread() {
        // Both constructions must behave identically: the native waker
        // (eventfd on Linux) and the portable socketpair fallback.
        type WakerCtor = fn() -> io::Result<(net::Waker, net::WakeReceiver)>;
        let constructors: [WakerCtor; 2] = [net::waker, net::socket_waker];
        for make_waker in constructors {
            for backend in backends() {
                let poller = Poller::with_backend(backend).unwrap();
                let (waker, rx) = make_waker().unwrap();
                poller
                    .register(&rx, Token(0), Interest::READABLE, Trigger::Level)
                    .unwrap();
                // Keep the original waker alive for the whole test: dropping
                // every clone of a socketpair waker closes the pair's write
                // half, which (correctly) reads as a hangup on the receiver.
                let thread_waker = waker.clone();
                let handle = std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(50));
                    thread_waker.wake().unwrap();
                });
                let mut events = Vec::new();
                assert_eq!(wait_some(&poller, &mut events), 1, "{backend:?}");
                assert_eq!(events[0].token, Token(0));
                rx.drain();
                let n = poller.wait(&mut events, 64, Some(TICK)).unwrap();
                assert_eq!(n, 0, "{backend:?}: drained waker still readable");
                handle.join().unwrap();
                // Coalescing: many wakes, one drain, then silence.
                for _ in 0..100 {
                    waker.wake().unwrap();
                }
                assert!(wait_some(&poller, &mut events) >= 1, "{backend:?}");
                rx.drain();
                let n = poller.wait(&mut events, 64, Some(TICK)).unwrap();
                assert_eq!(n, 0, "{backend:?}: coalesced wakes survived a drain");
            }
        }
    }

    #[test]
    fn nonblocking_accept_reports_empty_backlog_then_connection() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let listener = net::listen_nonblocking("127.0.0.1:0".parse().unwrap()).unwrap();
            let addr = listener.local_addr().unwrap();
            assert!(net::accept_nonblocking(&listener).unwrap().is_none());

            poller
                .register(&listener, Token(100), Interest::READABLE, Trigger::Level)
                .unwrap();
            let client = std::net::TcpStream::connect(addr).unwrap();
            let mut events = Vec::new();
            assert!(wait_some(&poller, &mut events) >= 1, "{backend:?}");
            assert_eq!(events[0].token, Token(100));
            let (stream, peer) = net::accept_nonblocking(&listener)
                .unwrap()
                .expect("backlog had a connection");
            assert_eq!(peer, client.local_addr().unwrap());
            drop(stream);
        }
    }

    #[test]
    fn many_registrations_dispatch_by_token() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let pairs: Vec<(UnixStream, UnixStream)> =
                (0..32).map(|_| nonblocking_pair()).collect();
            for (i, (a, _)) in pairs.iter().enumerate() {
                poller
                    .register(a, Token(i), Interest::READABLE, Trigger::Level)
                    .unwrap();
            }
            // Make every odd-indexed pair readable.
            for (i, (_, b)) in pairs.iter().enumerate() {
                if i % 2 == 1 {
                    (&b.try_clone().unwrap()).write_all(b"x").unwrap();
                }
            }
            let mut seen = std::collections::BTreeSet::new();
            let mut events = Vec::new();
            let deadline = std::time::Instant::now() + PATIENCE;
            while seen.len() < 16 && std::time::Instant::now() < deadline {
                poller.wait(&mut events, 64, Some(TICK)).unwrap();
                for ev in &events {
                    assert!(ev.token.0 % 2 == 1, "{backend:?}: wrong token {:?}", ev.token);
                    seen.insert(ev.token.0);
                }
            }
            assert_eq!(seen.len(), 16, "{backend:?}: missing tokens");
        }
    }
}
