//! The syscall layer: minimal FFI declarations for `epoll` (Linux) and
//! `poll(2)` (any unix), plus the two backend implementations.
//!
//! This is the only module in the workspace's serving stack that contains
//! `unsafe` code, and every unsafe block is a direct, argument-checked
//! syscall through libc symbols that `std` already links. No allocation or
//! pointer arithmetic happens on the unsafe side: buffers are plain Rust
//! `Vec`s handed to the kernel by raw pointer + length.

use std::collections::HashMap;
use std::io;
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::RawFd;
use std::sync::Mutex;
use std::time::Duration;

use crate::{Event, Interest, Token, Trigger};

// ---------------------------------------------------------------------------
// FFI declarations (the subset of libc the two backends need).
// ---------------------------------------------------------------------------

/// One `epoll_event` as the kernel ABI defines it. On x86-64 the kernel
/// struct is packed (no padding between `events` and `data`); on other
/// architectures it has natural alignment — the same dance mio does.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// One `pollfd` as `poll(2)` defines it.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

#[cfg(target_os = "linux")]
extern "C" {
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

/// Converts an optional wait budget to the millisecond argument both
/// syscalls take (`-1` = block forever). Sub-millisecond budgets round up
/// to 1 ms so a short positive timeout never degenerates into a busy spin.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => {
            let ms = d.as_millis().clamp(1, c_int::MAX as u128);
            ms as c_int
        }
    }
}

// ---------------------------------------------------------------------------
// eventfd (Linux) — the kernel's native wakeup primitive.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
const EFD_CLOEXEC: c_int = 0o2000000;
#[cfg(target_os = "linux")]
const EFD_NONBLOCK: c_int = 0o4000;

/// An owned Linux `eventfd`: one 8-byte kernel counter, pollable like any
/// fd, readable whenever the counter is non-zero and reset to zero by a
/// read. One fd instead of a socketpair's two, and wakes coalesce in the
/// kernel counter instead of piling bytes into a socket buffer.
#[cfg(target_os = "linux")]
pub(crate) struct EventFd {
    fd: RawFd,
}

#[cfg(target_os = "linux")]
impl EventFd {
    pub(crate) fn new() -> io::Result<EventFd> {
        // SAFETY: eventfd takes two scalars and returns a new fd or -1; no
        // pointers are involved.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// Add 1 to the counter, making the fd readable.
    pub(crate) fn signal(&self) -> io::Result<()> {
        let bytes = 1u64.to_ne_bytes();
        loop {
            // SAFETY: writes exactly 8 bytes from a live stack buffer.
            let rc = unsafe { write(self.fd, bytes.as_ptr(), bytes.len()) };
            if rc == 8 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            match err.kind() {
                // Counter saturated: a wakeup is already pending — success.
                io::ErrorKind::WouldBlock => return Ok(()),
                io::ErrorKind::Interrupted => continue,
                _ => return Err(err),
            }
        }
    }

    /// Read the counter back to zero so a level-triggered poller stops
    /// reporting the fd readable.
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer.
        while unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) } == 8 {}
    }
}

#[cfg(target_os = "linux")]
impl std::os::unix::io::AsRawFd for EventFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd
    }
}

#[cfg(target_os = "linux")]
impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `fd` is a valid eventfd this struct owns exclusively.
        unsafe {
            close(self.fd);
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend (Linux).
// ---------------------------------------------------------------------------

/// The epoll-based poller: readiness tracking lives in the kernel, so
/// `wait` is O(ready), not O(registered) — the property that lets one
/// shard thread hold thousands of mostly-idle connections for free.
#[cfg(target_os = "linux")]
pub(crate) struct EpollBackend {
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    pub(crate) fn new() -> io::Result<EpollBackend> {
        // SAFETY: epoll_create1 takes a flags word and returns a new fd or
        // -1; no pointers are involved.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollBackend { epfd })
    }

    fn mask(interest: Interest, trigger: Trigger) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.is_readable() {
            events |= EPOLLIN;
        }
        if interest.is_writable() {
            events |= EPOLLOUT;
        }
        if trigger == Trigger::Edge {
            events |= EPOLLET;
        }
        events
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut event = event;
        let ptr = event
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is either null (legal for EPOLL_CTL_DEL) or points
        // at a live, properly laid-out EpollEvent on this stack frame for
        // the duration of the call.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(crate) fn register(
        &self,
        fd: RawFd,
        token: Token,
        interest: Interest,
        trigger: Trigger,
    ) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: Self::mask(interest, trigger),
                data: token.0 as u64,
            }),
        )
    }

    pub(crate) fn reregister(
        &self,
        fd: RawFd,
        token: Token,
        interest: Interest,
        trigger: Trigger,
    ) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: Self::mask(interest, trigger),
                data: token.0 as u64,
            }),
        )
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    pub(crate) fn wait(
        &self,
        events: &mut Vec<Event>,
        capacity: usize,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let mut buf: Vec<EpollEvent> = vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)];
        // SAFETY: `buf` is a live, zero-initialised array of `capacity`
        // kernel-layout events; the kernel writes at most `len` entries.
        let rc = unsafe {
            epoll_wait(
                self.epfd,
                buf.as_mut_ptr(),
                buf.len() as c_int,
                timeout_ms(timeout),
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            // An interrupted wait is a spurious wakeup, not a failure: the
            // caller re-checks its own state and waits again.
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for raw in &buf[..rc as usize] {
            // Copy out of the (possibly packed) struct before using.
            let bits = raw.events;
            let data = raw.data;
            events.push(Event {
                token: Token(data as usize),
                readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                writable: bits & (EPOLLOUT | EPOLLERR) != 0,
                closed: bits & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
            });
        }
        Ok(rc as usize)
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollBackend {
    fn drop(&mut self) {
        // SAFETY: `epfd` is a valid fd this struct owns exclusively.
        unsafe {
            close(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------------
// poll(2) backend (portable fallback).
// ---------------------------------------------------------------------------

/// One registration in the poll backend's table.
struct PollReg {
    token: Token,
    interest: Interest,
}

/// The `poll(2)`-based poller: the registration table lives in user space
/// and every `wait` is O(registered). Correct everywhere, slower at scale —
/// the fallback for hosts without epoll and the differential check for the
/// epoll backend's semantics.
///
/// Edge-triggering is approximated with level semantics: `poll(2)` only
/// reports current state, so "new bytes arrived on an already-readable fd"
/// is indistinguishable from "old bytes still pending" — any suppression
/// scheme would eventually *miss* an edge, which is fatal, whereas
/// duplicate events are harmless to a correct edge consumer (it drains to
/// `WouldBlock` on every event regardless). So this backend may repeat
/// events where epoll would not, and never misses one.
pub(crate) struct PollBackend {
    regs: Mutex<HashMap<RawFd, PollReg>>,
}

impl PollBackend {
    pub(crate) fn new() -> PollBackend {
        PollBackend {
            regs: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<RawFd, PollReg>> {
        self.regs.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn register(
        &self,
        fd: RawFd,
        token: Token,
        interest: Interest,
        _trigger: Trigger,
    ) -> io::Result<()> {
        let mut regs = self.lock();
        if regs.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered (use reregister)",
            ));
        }
        regs.insert(fd, PollReg { token, interest });
        Ok(())
    }

    pub(crate) fn reregister(
        &self,
        fd: RawFd,
        token: Token,
        interest: Interest,
        _trigger: Trigger,
    ) -> io::Result<()> {
        let mut regs = self.lock();
        let reg = regs.get_mut(&fd).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "fd not registered (use register)")
        })?;
        reg.token = token;
        reg.interest = interest;
        Ok(())
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.lock()
            .remove(&fd)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }

    pub(crate) fn wait(
        &self,
        events: &mut Vec<Event>,
        capacity: usize,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let mut fds: Vec<PollFd> = Vec::new();
        {
            let regs = self.lock();
            fds.reserve(regs.len());
            for (&fd, reg) in regs.iter() {
                let mut mask: i16 = 0;
                if reg.interest.is_readable() {
                    mask |= POLLIN;
                }
                if reg.interest.is_writable() {
                    mask |= POLLOUT;
                }
                fds.push(PollFd {
                    fd,
                    events: mask,
                    revents: 0,
                });
            }
        }
        if fds.is_empty() {
            // Nothing registered: honour the timeout as a plain sleep so
            // callers' idle ticks keep firing.
            if let Some(d) = timeout {
                std::thread::sleep(d);
            }
            return Ok(0);
        }
        // SAFETY: `fds` is a live array of kernel-layout pollfds; poll
        // writes only the `revents` field of each entry.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms(timeout)) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        let regs = self.lock();
        let mut reported = 0usize;
        for pfd in &fds {
            if pfd.revents == 0 {
                continue;
            }
            let Some(reg) = regs.get(&pfd.fd) else {
                continue; // raced with a deregister — drop the event
            };
            let closed = pfd.revents & (POLLERR | POLLHUP) != 0;
            let readable = pfd.revents & (POLLIN | POLLHUP | POLLERR) != 0;
            let writable = pfd.revents & (POLLOUT | POLLERR) != 0;
            events.push(Event {
                token: reg.token,
                readable: readable || closed,
                writable,
                closed,
            });
            reported += 1;
            if reported >= capacity {
                break;
            }
        }
        Ok(reported)
    }
}
