//! metrics — a minimal, vendored, lock-free telemetry core.
//!
//! Three instrument types and one registry, built for hot paths that must
//! never block or allocate while recording:
//!
//! * [`Counter`] — monotonically increasing `u64`, striped across
//!   cache-padded per-thread cells so concurrent `inc` calls never share a
//!   line; folded on read.
//! * [`Gauge`] — a settable/steppable `i64` (one atomic; gauges are
//!   low-frequency by nature).
//! * [`Histogram`] — fixed log2 buckets: a recorded value `v` lands in
//!   bucket `bitwidth(v)` (bucket 0 holds `v == 0`, bucket `i ≥ 1` holds
//!   `2^(i-1) ≤ v < 2^i`). Bucket counters are striped like [`Counter`];
//!   a scrape folds the stripes into a [`HistogramSnapshot`] that can
//!   answer quantile queries to bucket-boundary precision.
//! * [`Registry`] — named instruments with fixed label sets and
//!   Prometheus-style text exposition ([`Registry::render`]). Registration
//!   takes a lock; recording never does.
//!
//! Design rules: no `unsafe` (enforced), no dependencies (vendor tree), no
//! allocation after an instrument is registered, and scrapes are wait-free
//! with respect to recorders (a torn read across stripes can only misplace
//! in-flight increments, never lose completed ones).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent cells a striped instrument spreads its updates
/// over. Threads are assigned stripes round-robin on first use; with a
/// power of two the modulo folds to a mask.
pub const STRIPES: usize = 8;

/// Number of log2 buckets in a [`Histogram`] — enough for the full `u64`
/// range (bucket 0 for zero, buckets 1..=64 for each bit width), so no
/// recorded value is ever clipped.
pub const BUCKETS: usize = 65;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's stripe index: assigned round-robin from a process-wide
/// counter the first time the thread records anything.
fn stripe_index() -> usize {
    THREAD_SLOT.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            idx = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
            slot.set(idx);
        }
        idx % STRIPES
    })
}

/// One cache-line-padded atomic cell. 64-byte alignment keeps neighbouring
/// stripes out of each other's coherence traffic.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn new() -> PaddedU64 {
        PaddedU64(AtomicU64::new(0))
    }
}

/// A monotonically increasing counter, striped to keep concurrent
/// increments off a shared cache line. Reads fold all stripes.
pub struct Counter {
    stripes: [PaddedU64; STRIPES],
}

impl Counter {
    /// A fresh zero counter.
    pub const fn new() -> Counter {
        Counter {
            stripes: [
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
            ],
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold all stripes into the current total.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// An instantaneous `i64` measurement (open connections, ring occupancy).
/// One atomic: gauges move orders of magnitude less often than counters.
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Step the value up.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Step the value down.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

/// One stripe of a histogram: a full bucket array plus running sum, padded
/// as a unit (the array itself spans many lines; padding separates
/// *stripes*, which is what contention cares about).
#[repr(align(64))]
struct HistStripe {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl HistStripe {
    fn new() -> HistStripe {
        HistStripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// The log2 bucket a value lands in: 0 for `v == 0`, otherwise the bit
/// width of `v` (so bucket `i` covers `2^(i-1) ..= 2^i - 1`).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed log2-bucket histogram. Recording is two relaxed `fetch_add`s on
/// this thread's stripe; scraping folds stripes into a
/// [`HistogramSnapshot`].
pub struct Histogram {
    stripes: Vec<HistStripe>,
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            stripes: (0..STRIPES).map(|_| HistStripe::new()).collect(),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let stripe = &self.stripes[stripe_index()];
        stripe.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Fold every stripe into a consistent-enough snapshot (increments
    /// racing the fold land wholly in or wholly out per bucket).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        for stripe in &self.stripes {
            for (acc, b) in buckets.iter_mut().zip(stripe.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(stripe.sum.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum,
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A folded point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (`buckets[i]` = observations with
    /// [`bucket_of`]`(v) == i`).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), reported as the inclusive upper
    /// bound of the bucket containing that rank — i.e. exact to
    /// bucket-boundary precision, never below the true quantile's bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Index of the highest non-empty bucket, or `None` when empty — the
    /// "same bucket ± one" comparisons cross-validating two histograms use
    /// this together with [`HistogramSnapshot::quantile_bucket`].
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some(i);
            }
        }
        None
    }
}

/// What kind of instrument a registry entry wraps — drives the `# TYPE`
/// line and the exposition shape.
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    instrument: Instrument,
}

impl Entry {
    fn label_suffix(&self) -> String {
        render_labels(&self.labels, &[])
    }
}

fn render_labels(labels: &[(&'static str, String)], extra: &[(&str, String)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (*k, v.as_str()))
        .chain(extra.iter().map(|(k, v)| (*k, v.as_str())))
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// A named-instrument registry with Prometheus-style text exposition.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a mutex and
/// returns an `Arc` handle; the hot path holds only the handle and never
/// touches the registry again. Registering the same `(name, labels)` twice
/// returns the existing instrument, so independent subsystems can share a
/// series without coordination.
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn find_or_insert<T, F, G>(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        matches: F,
        make: G,
    ) -> Arc<T>
    where
        F: Fn(&Instrument) -> Option<Arc<T>>,
        G: Fn() -> (Arc<T>, Instrument),
    {
        let mut entries = self.entries.lock().unwrap();
        for entry in entries.iter() {
            if entry.name == name
                && entry.labels.len() == labels.len()
                && entry
                    .labels
                    .iter()
                    .zip(labels.iter())
                    .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
            {
                if let Some(found) = matches(&entry.instrument) {
                    return found;
                }
                panic!("metric {name} re-registered as a different instrument type");
            }
        }
        let (handle, instrument) = make();
        entries.push(Entry {
            name,
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            instrument,
        });
        handle
    }

    /// Register (or look up) a counter series.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Arc<Counter> {
        self.find_or_insert(
            name,
            labels,
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Instrument::Counter(c))
            },
        )
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Arc<Gauge> {
        self.find_or_insert(
            name,
            labels,
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Instrument::Gauge(g))
            },
        )
    }

    /// Register (or look up) a histogram series.
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Arc<Histogram> {
        self.find_or_insert(
            name,
            labels,
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (Arc::clone(&h), Instrument::Histogram(h))
            },
        )
    }

    /// Render every registered series in Prometheus text exposition format:
    /// one `# TYPE` line per metric name, `name{labels} value` samples,
    /// and for histograms cumulative `_bucket{le="..."}` samples (empty
    /// buckets elided, `+Inf` always present) plus `_sum` / `_count`.
    /// Output is sorted by name then label set, so the exposition is
    /// byte-stable for a given set of series.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            entries[a]
                .name
                .cmp(entries[b].name)
                .then_with(|| entries[a].labels.cmp(&entries[b].labels))
        });
        let mut out = String::new();
        let mut last_name = "";
        for &i in &order {
            let entry = &entries[i];
            if entry.name != last_name {
                let kind = match entry.instrument {
                    Instrument::Counter(_) => "counter",
                    Instrument::Gauge(_) => "gauge",
                    Instrument::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {kind}", entry.name);
                last_name = entry.name;
            }
            match &entry.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", entry.name, entry.label_suffix(), c.value());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", entry.name, entry.label_suffix(), g.value());
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (b, &c) in snap.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = bucket_upper_bound(b).to_string();
                        let labels = render_labels(&entry.labels, &[("le", le)]);
                        let _ = writeln!(out, "{}_bucket{labels} {cumulative}", entry.name);
                    }
                    let labels = render_labels(&entry.labels, &[("le", "+Inf".to_string())]);
                    let _ = writeln!(out, "{}_bucket{labels} {}", entry.name, snap.count);
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        entry.name,
                        entry.label_suffix(),
                        snap.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        entry.name,
                        entry.label_suffix(),
                        snap.count
                    );
                }
            }
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Deterministic mixer so the property tests need no RNG dependency.
    fn scramble(x: u64) -> u64 {
        let mut x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        x ^= x >> 31;
        x.wrapping_mul(0xbf58_476d_1ce4_e5b9)
    }

    #[test]
    fn bucket_of_matches_log2_definition() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Property over seeded values: bucket i ⇔ 2^(i-1) ≤ v < 2^i.
        let mut roll = 0xfeed_u64;
        for _ in 0..10_000 {
            roll = scramble(roll);
            let v = roll >> (roll % 60); // cover small and large magnitudes
            let b = bucket_of(v);
            if v == 0 {
                assert_eq!(b, 0);
            } else {
                assert!(v >= 1u64 << (b - 1), "v={v} below bucket {b} floor");
                assert!(b >= 64 || v < 1u64 << b, "v={v} above bucket {b} ceiling");
            }
            assert!(v <= bucket_upper_bound(b));
        }
    }

    #[test]
    fn histogram_concurrent_recording_loses_nothing_vs_serial_oracle() {
        // Seeded value streams recorded concurrently must fold to exactly
        // the bucket counts of a serial replay of the same streams.
        for seed in [1u64, 42, 1337] {
            let hist = Histogram::new();
            let threads = 8usize;
            let per_thread = 20_000usize;
            thread::scope(|scope| {
                for t in 0..threads {
                    let hist = &hist;
                    scope.spawn(move || {
                        let mut roll = seed.wrapping_add(t as u64);
                        for _ in 0..per_thread {
                            roll = scramble(roll);
                            hist.record(roll >> (roll % 64));
                        }
                    });
                }
            });
            // Serial oracle.
            let mut oracle = [0u64; BUCKETS];
            let mut oracle_sum = 0u64;
            for t in 0..threads {
                let mut roll = seed.wrapping_add(t as u64);
                for _ in 0..per_thread {
                    roll = scramble(roll);
                    let v = roll >> (roll % 64);
                    oracle[bucket_of(v)] += 1;
                    oracle_sum = oracle_sum.wrapping_add(v);
                }
            }
            let snap = hist.snapshot();
            assert_eq!(snap.count, (threads * per_thread) as u64, "seed {seed}");
            assert_eq!(snap.buckets, oracle, "seed {seed}: bucket counts diverge");
            assert_eq!(snap.sum, oracle_sum, "seed {seed}: sums diverge");
        }
    }

    #[test]
    fn counter_concurrent_increments_fold_exactly() {
        let counter = Counter::new();
        let threads = 8usize;
        let per_thread = 50_000u64;
        thread::scope(|scope| {
            for t in 0..threads {
                let counter = &counter;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        if (i + t as u64).is_multiple_of(3) {
                            counter.add(2);
                        } else {
                            counter.inc();
                        }
                    }
                });
            }
        });
        let expected: u64 = (0..threads as u64)
            .map(|t| {
                (0..per_thread)
                    .map(|i| if (i + t) % 3 == 0 { 2 } else { 1 })
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(counter.value(), expected);
    }

    #[test]
    fn quantiles_are_within_bucket_boundary_error() {
        // For a seeded stream, the reported quantile must be the upper
        // bound of the bucket holding the true (sorted-rank) quantile.
        for seed in [7u64, 99, 2024] {
            let hist = Histogram::new();
            let mut values = Vec::new();
            let mut roll = seed;
            for _ in 0..5_000 {
                roll = scramble(roll);
                let v = roll % 1_000_000;
                hist.record(v);
                values.push(v);
            }
            values.sort_unstable();
            let snap = hist.snapshot();
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * values.len() as f64).ceil().max(1.0) as usize).min(values.len());
                let truth = values[rank - 1];
                let est = snap.quantile(q);
                // The estimate is the inclusive upper bound of truth's bucket.
                assert_eq!(
                    est,
                    bucket_upper_bound(bucket_of(truth)),
                    "seed {seed} q={q}: truth={truth}"
                );
                assert!(est >= truth, "seed {seed} q={q}: estimate below truth");
                // ...and within 2× of the truth (log2 bucket width bound).
                if truth > 0 {
                    assert!(
                        est < truth.saturating_mul(2),
                        "seed {seed} q={q}: est={est} not within bucket of truth={truth}"
                    );
                }
            }
        }
    }

    #[test]
    fn gauge_steps_and_sets() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.value(), 3);
        g.set(-7);
        assert_eq!(g.value(), -7);
    }

    #[test]
    fn registry_dedupes_and_renders_stable_exposition() {
        let reg = Registry::new();
        let c1 = reg.counter("requests_total", &[("op", "get")]);
        let c2 = reg.counter("requests_total", &[("op", "get")]);
        c1.inc();
        c2.add(2);
        // Same (name, labels) → same underlying instrument.
        assert_eq!(c1.value(), 3);
        reg.counter("requests_total", &[("op", "put")]).add(10);
        reg.gauge("conns_open", &[]).set(4);
        let h = reg.histogram("latency_us", &[("op", "get")]);
        h.record(3); // bucket 2 (le=3)
        h.record(100); // bucket 7 (le=127)

        let text = reg.render();
        let expected = "\
# TYPE conns_open gauge
conns_open 4
# TYPE latency_us histogram
latency_us_bucket{op=\"get\",le=\"3\"} 1
latency_us_bucket{op=\"get\",le=\"127\"} 2
latency_us_bucket{op=\"get\",le=\"+Inf\"} 2
latency_us_sum{op=\"get\"} 103
latency_us_count{op=\"get\"} 2
# TYPE requests_total counter
requests_total{op=\"get\"} 3
requests_total{op=\"put\"} 10
";
        assert_eq!(text, expected);
        // Rendering twice with no recording in between is byte-identical.
        assert_eq!(reg.render(), text);
    }

    #[test]
    #[should_panic(expected = "different instrument type")]
    fn registry_rejects_type_confusion() {
        let reg = Registry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }
}
