//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides `Mutex` and `RwLock` with parking_lot's API shape — `lock()` /
//! `read()` / `write()` return guards directly, with no poisoning — backed by
//! the `std::sync` primitives. A panic while a guard is held simply clears
//! the poison flag on the underlying lock, matching parking_lot's
//! "no poisoning" semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never fails (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` never fail (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
