//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides `Mutex`, `RwLock` and `Condvar` with parking_lot's API shape —
//! `lock()` / `read()` / `write()` return guards directly, with no
//! poisoning, and `Condvar::wait*` take `&mut MutexGuard` — backed by the
//! `std::sync` primitives. A panic while a guard is held simply clears the
//! poison flag on the underlying lock, matching parking_lot's
//! "no poisoning" semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard, RwLockWriteGuard,
};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock` never fails (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Wraps the std guard so [`Condvar`] can temporarily take it during a
/// wait (parking_lot's condvars consume and re-fill the guard in place via
/// `&mut`). The inner `Option` is `Some` except inside that window.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by a pending wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by a pending wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            ),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Whether a [`Condvar`] wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's API shape: waits take
/// `&mut MutexGuard` and re-acquire the same lock before returning, and a
/// poisoned underlying mutex is treated as unpoisoned.
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible, as with every
    /// condvar — re-check the predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken by a pending wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken by a pending wait");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until notified, `timeout` elapses, or the predicate returns
    /// `false` (waits while `condition` is true, like std's
    /// `wait_timeout_while`).
    pub fn wait_while_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken by a pending wait");
        let (std_guard, result) = match self.inner.wait_timeout_while(std_guard, timeout, |v| {
            condition(v)
        }) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader-writer lock whose `read`/`write` never fail (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        assert!(handle.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = lock.lock();
        let started = Instant::now();
        let result = cv.wait_for(&mut guard, Duration::from_millis(20));
        assert!(result.timed_out());
        assert!(started.elapsed() >= Duration::from_millis(15));
        // The guard is usable again after the wait returns.
        drop(guard);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_while_for_sees_predicate_flip() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut n = lock.lock();
            let timed_out = cv
                .wait_while_for(&mut n, |n| *n < 3, Duration::from_secs(5))
                .timed_out();
            (*n, timed_out)
        });
        let (lock, cv) = &*pair;
        for _ in 0..3 {
            *lock.lock() += 1;
            cv.notify_all();
        }
        let (n, timed_out) = handle.join().unwrap();
        assert_eq!(n, 3);
        assert!(!timed_out);
    }

    #[test]
    fn condvar_survives_poisoned_waiter_peer() {
        // A panicking guard-holder must not break a later wait_for.
        let m = Arc::new(Mutex::new(false));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }
}
