//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the shapes this workspace actually
//! uses — structs with named fields, and enums whose variants are either
//! unit variants or have named fields — without `syn`/`quote` (neither is
//! available offline). The input token stream is parsed by hand and the
//! generated impl is emitted as source text, mirroring serde's externally
//! tagged representation (`"Variant"` for unit variants, `{"Variant":
//! {...}}` for struct variants).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored stand-in trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("derive(Serialize): expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("derive(Serialize): expected type name, got {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize) stand-in does not support generic types ({name})");
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("derive(Serialize): no braced body found for {name}"),
        }
    };

    let generated = match kind.as_str() {
        "struct" => derive_for_struct(&name, body),
        "enum" => derive_for_enum(&name, body),
        other => panic!("derive(Serialize): unsupported item kind `{other}`"),
    };
    generated
        .parse()
        .expect("derive(Serialize): generated code failed to parse")
}

/// Advances past leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Splits a `{...}` body at commas that sit outside any `<...>` nesting.
/// (Bracketed/braced/parenthesised nesting is already opaque: those are
/// `Group` tokens.)
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("non-empty").push(token);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Extracts the field name from one field chunk (`[attrs] [vis] name : ty`).
fn field_name(chunk: &[TokenTree]) -> String {
    let mut i = 0;
    skip_attrs_and_vis(chunk, &mut i);
    match chunk.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("derive(Serialize): expected field name, got {other:?}"),
    }
}

fn derive_for_struct(name: &str, body: TokenStream) -> String {
    let fields: Vec<String> = split_top_level(body).iter().map(|c| field_name(c)).collect();
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), ::serde::Serialize::to_json_value(&self.{f}))"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_json_value(&self) -> ::serde::Value {{\n\
         \t\t::serde::Value::Object(vec![{}])\n\
         \t}}\n\
         }}",
        entries.join(", ")
    )
}

fn derive_for_enum(name: &str, body: TokenStream) -> String {
    let mut arms = Vec::new();
    for chunk in split_top_level(body) {
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let variant = match chunk.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("derive(Serialize): expected variant name, got {other:?}"),
        };
        i += 1;
        match chunk.get(i) {
            None => {
                // Unit variant: externally tagged as just the variant name.
                arms.push(format!(
                    "{name}::{variant} => ::serde::Value::String(\"{variant}\".to_string()),"
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields: Vec<String> =
                    split_top_level(g.stream()).iter().map(|c| field_name(c)).collect();
                let bindings = fields.join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{f}\".to_string(), ::serde::Serialize::to_json_value({f}))"
                        )
                    })
                    .collect();
                arms.push(format!(
                    "{name}::{variant} {{ {bindings} }} => ::serde::Value::Object(vec![\
                     (\"{variant}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                    entries.join(", ")
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(g.stream()).len();
                let bindings: Vec<String> = (0..arity).map(|k| format!("f{k}")).collect();
                let entries: Vec<String> = bindings
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                    .collect();
                let inner = if arity == 1 {
                    entries[0].clone()
                } else {
                    format!("::serde::Value::Array(vec![{}])", entries.join(", "))
                };
                arms.push(format!(
                    "{name}::{variant}({}) => ::serde::Value::Object(vec![\
                     (\"{variant}\".to_string(), {inner})]),",
                    bindings.join(", ")
                ));
            }
            other => panic!("derive(Serialize): unsupported variant shape {other:?}"),
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_json_value(&self) -> ::serde::Value {{\n\
         \t\tmatch self {{\n{}\n\t\t}}\n\
         \t}}\n\
         }}",
        arms.join("\n")
    )
}
