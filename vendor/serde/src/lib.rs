//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the one serialization path the workspace uses: `Serialize` as
//! "convert to an in-memory JSON [`Value`]", plus a derive macro
//! (`serde_derive`) for structs with named fields and enums. The companion
//! `serde_json` stand-in renders [`Value`] with serde_json's pretty format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::time::Duration;

pub use serde_derive::Serialize;

/// An in-memory JSON value (the subset serde_json's `Value` covers).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also produced by non-finite floats, as in serde_json).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A finite float.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if losslessly representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, if losslessly representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a float; integers widen as serde_json's `as_f64` does.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Float(f)
                } else {
                    // serde_json has no representation for NaN/infinity.
                    Value::Null
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Duration {
    // Matches serde's impl for Duration: {"secs": …, "nanos": …}.
    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            ("nanos".to_string(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(1u32.to_json_value(), Value::UInt(1));
        assert_eq!((-3i64).to_json_value(), Value::Int(-3));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!(f64::INFINITY.to_json_value(), Value::Null);
        assert_eq!("hi".to_json_value(), Value::String("hi".to_string()));
        assert_eq!(
            (1usize, 2.5f64).to_json_value(),
            Value::Array(vec![Value::UInt(1), Value::Float(2.5)])
        );
    }

    #[test]
    fn accessors_match_serde_json_semantics() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::UInt(7)),
            ("f".to_string(), Value::Float(2.5)),
            ("s".to_string(), Value::String("hi".to_string())),
            ("a".to_string(), Value::Array(vec![Value::Int(-1)])),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("f").and_then(Value::as_u64), None);
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("a").and_then(Value::as_array).map(Vec::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Int(-1).as_i64(), Some(-1));
        assert_eq!(Value::UInt(u64::MAX).as_i64(), None);
    }

    #[test]
    fn duration_matches_serde_shape() {
        let d = Duration::new(3, 500);
        assert_eq!(
            d.to_json_value(),
            Value::Object(vec![
                ("secs".to_string(), Value::UInt(3)),
                ("nanos".to_string(), Value::UInt(500)),
            ])
        );
    }
}
