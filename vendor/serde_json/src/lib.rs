//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` [`Value`] in serde_json's pretty format
//! (two-space indent, `"key": value`), parses JSON text back into a
//! [`Value`] via [`from_str`] (used by the benchmark baseline gates to read
//! committed `BENCH_*.json` artifacts), and provides the [`json!`] macro
//! for the object/array literals the workspace uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Serialization error. The vendored path is infallible in practice; this
/// exists so call sites can keep serde_json's `Result` + `.expect` shape.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value to a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Renders `value` as pretty JSON (two-space indent, serde_json style).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a [`Value`].
///
/// Accepts the full JSON grammar (with `\uXXXX` escapes, including
/// surrogate pairs). Numbers parse as `UInt` when non-negative integral,
/// `Int` when negative integral, and `Float` otherwise — mirroring how the
/// serializer classifies them.
///
/// # Errors
///
/// Returns an [`Error`] describing the byte offset and nature of the first
/// syntax problem, or trailing non-whitespace after the document.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> Error {
        Error(format!("{what} at byte {}", self.pos))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: the low half must follow.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000
                                    + ((unit - 0xD800) << 10)
                                    + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged: find the end
                    // of this char in the (already valid UTF-8) input.
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("bad \\u escape"))?;
        let unit = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number at byte {start}")))
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    // serde_json always keeps a fractional part on whole floats ("1800.0").
    if f.fract() == 0.0 && f.abs() < 1e15 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_escaped(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Builds a [`Value`] from a JSON-ish literal. Supports the shapes used in
/// this workspace: `null`, object literals with literal keys and expression
/// values, array literals, and bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( (($key).to_string(), $crate::to_value(&$val)) ),* ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_layout() {
        assert_eq!(to_string_pretty(&vec![1u32, 2, 3]).unwrap(), "[\n  1,\n  2,\n  3\n]");
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("x".to_string())),
            ("vals".to_string(), Value::Array(vec![Value::Float(1.0)])),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"name\": \"x\",\n  \"vals\": [\n    1.0\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn floats_and_nonfinite() {
        assert_eq!(to_string(&1800.0f64).unwrap(), "1800.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn json_macro_shapes() {
        let commits = 7u64;
        let v = json!({
            "mode": "Visible",
            "commits": commits,
            "throughput": commits as f64 / 2.0,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"mode\":\"Visible\",\"commits\":7,\"throughput\":3.5}"
        );
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!([1u8, 2u8])).unwrap(), "[1,2]");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-42").unwrap(), Value::Int(-42));
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("-0.5").unwrap(), Value::Float(-0.5));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_structures_and_preserves_order() {
        let v = from_str(r#"{"b": [1, -2, 3.5], "a": {"x": null}, "s": "t"}"#).unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                (
                    "b".to_string(),
                    Value::Array(vec![Value::UInt(1), Value::Int(-2), Value::Float(3.5)])
                ),
                (
                    "a".to_string(),
                    Value::Object(vec![("x".to_string(), Value::Null)])
                ),
                ("s".to_string(), Value::String("t".to_string())),
            ])
        );
        assert_eq!(from_str("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap(),
            Value::String("a\"b\\c\ndAé".to_string())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            from_str(r#""\ud83d\ude00""#).unwrap(),
            Value::String("\u{1F600}".to_string())
        );
        assert_eq!(
            from_str("\"caf\u{e9}\"").unwrap(),
            Value::String("café".to_string())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "tru", "[1,", "{\"a\"}", "{\"a\":}", "1 2", "\"unterminated",
            "[1 2]", "nul", "\"\\q\"", "\"\\ud83d\"",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn round_trips_through_the_writers() {
        let v = json!({
            "manager": "greedy",
            "threads": 8usize,
            "throughput": 123456.75f64,
            "bounded": true,
            "rows": [1u64, 2u64],
            "note": json!(null),
        });
        assert_eq!(from_str(&to_string(&v).unwrap()).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
        // Whole floats print as "1800.0" and must come back as floats.
        assert_eq!(from_str("1800.0").unwrap(), Value::Float(1800.0));
    }
}
