//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` [`Value`] in serde_json's pretty format
//! (two-space indent, `"key": value`), and provides the [`json!`] macro for
//! the object/array literals the workspace uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Serialization error. The vendored path is infallible in practice; this
/// exists so call sites can keep serde_json's `Result` + `.expect` shape.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value to a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Renders `value` as pretty JSON (two-space indent, serde_json style).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    // serde_json always keeps a fractional part on whole floats ("1800.0").
    if f.fract() == 0.0 && f.abs() < 1e15 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_escaped(key, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Builds a [`Value`] from a JSON-ish literal. Supports the shapes used in
/// this workspace: `null`, object literals with literal keys and expression
/// values, array literals, and bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( (($key).to_string(), $crate::to_value(&$val)) ),* ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_layout() {
        assert_eq!(to_string_pretty(&vec![1u32, 2, 3]).unwrap(), "[\n  1,\n  2,\n  3\n]");
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("x".to_string())),
            ("vals".to_string(), Value::Array(vec![Value::Float(1.0)])),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"name\": \"x\",\n  \"vals\": [\n    1.0\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn floats_and_nonfinite() {
        assert_eq!(to_string(&1800.0f64).unwrap(), "1800.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn json_macro_shapes() {
        let commits = 7u64;
        let v = json!({
            "mode": "Visible",
            "commits": commits,
            "throughput": commits as f64 / 2.0,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"mode\":\"Visible\",\"commits\":7,\"throughput\":3.5}"
        );
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!([1u8, 2u8])).unwrap(), "[1,2]");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
    }
}
