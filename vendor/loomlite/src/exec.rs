//! The execution engine: cooperative token-passing scheduler, schedule
//! decision tree, vector-clock memory model, exploration driver, and
//! failure-trace shrinking.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::{Duration, Instant};

use crate::clock::VClock;

/// Hard cap on modeled threads per run.
const MAX_THREADS: usize = 16;

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

/// Handle tying an OS thread to a modeled thread of one run.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) model: Arc<Model>,
    pub(crate) tid: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    /// Message captured by the session panic hook on the panicking thread —
    /// formatted panic payloads can only be rendered inside the hook.
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The active model context, if any. Returns `None` during unwinding so that
/// destructors of modeled types free-run instead of consulting an execution
/// that is being torn down.
pub(crate) fn current() -> Option<Ctx> {
    if std::thread::panicking() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Marker payload used to silently unwind threads of an abandoned run.
struct Abandon;

fn abandon() -> ! {
    resume_unwind(Box::new(Abandon))
}

// ---------------------------------------------------------------------------
// Object identity
// ---------------------------------------------------------------------------

/// Lazily assigned per-object id. Modeled objects (atomics, mutexes,
/// condvars) carry one; the id is allocated deterministically by the first
/// modeled operation that touches the object (always performed by the token
/// holder), so traces and replays agree on labels and map keys never suffer
/// from address reuse.
pub(crate) struct ObjId(AtomicU32);

impl ObjId {
    pub(crate) const fn new() -> Self {
        ObjId(AtomicU32::new(0))
    }
}

// ---------------------------------------------------------------------------
// Decision tree
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Which thread performs the next operation.
    Switch,
    /// Which visible store a load reads (weak-memory value choice), or which
    /// of several condvar waiters a `notify_one` wakes.
    Value,
    /// Which timed waiter a deadlock rescue wakes.
    Rescue,
}

#[derive(Debug, Clone)]
struct Branch {
    kind: Kind,
    chosen: usize,
    arity: usize,
    /// For `Switch`: was the previously running thread itself runnable?
    /// (If so, any `chosen > 0` is a preemption and is bound-limited.)
    cur_runnable: bool,
    /// Preemptions accumulated before this decision — used by the DFS
    /// backtracker to honor the preemption bound.
    preempt_before: usize,
}

/// Per-run schedule decider for decisions beyond the replayed prefix.
enum Decider {
    /// Default-0 choices (DFS order; 0 = "continue current thread").
    Exhaustive,
    /// PCT-style randomized priorities with priority-change points.
    Random {
        rng: SplitMix,
        priorities: Vec<u64>,
        change_points: Vec<usize>,
        switches: usize,
        low: u64,
    },
}

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ---------------------------------------------------------------------------
// Run state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum BlockOn {
    Mutex(u32),
    Condvar { cv: u32, timed: bool },
    Join(usize),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ThStatus {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

struct Th {
    status: ThStatus,
    clock: VClock,
    wake_was_timeout: bool,
}

struct StoreEv {
    value: u64,
    tid: usize,
    stamp: u32,
    /// Release clock: set by Release/SeqCst stores (and propagated through
    /// RMWs — release sequences), joined by Acquire/SeqCst loads that read
    /// this event.
    release: Option<VClock>,
}

struct Location {
    history: Vec<StoreEv>,
    /// Per-thread index of the newest event each thread has observed (reads
    /// from an older event would violate coherence).
    seen: Vec<usize>,
    /// Index of the newest SeqCst store: SeqCst loads may not read older.
    last_sc: Option<usize>,
}

struct MutexSt {
    held_by: Option<usize>,
    release: VClock,
}

struct Event {
    tid: usize,
    msg: String,
}

struct RunCfg {
    max_steps: usize,
    trace: bool,
}

struct RunState {
    cfg: RunCfg,
    decider: Decider,
    path: Vec<Branch>,
    pos: usize,
    threads: Vec<Th>,
    active: usize,
    done: bool,
    abandoning: bool,
    preemptions: usize,
    steps: usize,
    locations: HashMap<u32, Location>,
    mutexes: HashMap<u32, MutexSt>,
    next_obj: u32,
    sc_clock: VClock,
    failure: Option<String>,
    timeout_rescues: u64,
    trace: Vec<Event>,
}

fn acquiring(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releasing(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn ord_name(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "?",
    }
}

impl RunState {
    fn new(cfg: RunCfg, decider: Decider, prefix: Vec<Branch>) -> Self {
        RunState {
            cfg,
            decider,
            path: prefix,
            pos: 0,
            threads: Vec::new(),
            active: 0,
            done: false,
            abandoning: false,
            preemptions: 0,
            steps: 0,
            locations: HashMap::new(),
            mutexes: HashMap::new(),
            next_obj: 0,
            sc_clock: VClock::new(),
            failure: None,
            timeout_rescues: 0,
            trace: Vec::new(),
        }
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            if self.cfg.trace {
                self.trace.push(Event {
                    tid: self.active,
                    msg: format!("FAILURE: {msg}"),
                });
            }
            self.failure = Some(msg);
        }
        self.abandoning = true;
    }

    fn trace_ev(&mut self, tid: usize, msg: String) {
        self.trace.push(Event { tid, msg });
    }

    fn obj_key(&mut self, obj: &ObjId) -> u32 {
        let k = obj.0.load(Ordering::Relaxed);
        if k != 0 {
            return k;
        }
        self.next_obj += 1;
        let k = self.next_obj;
        obj.0.store(k, Ordering::Relaxed);
        k
    }

    fn loc_entry(&mut self, key: u32, init: u64) -> &mut Location {
        self.locations.entry(key).or_insert_with(|| Location {
            history: vec![StoreEv {
                value: init,
                tid: 0,
                stamp: 0,
                release: None,
            }],
            seen: Vec::new(),
            last_sc: None,
        })
    }

    fn mutex_entry(&mut self, key: u32) -> &mut MutexSt {
        self.mutexes.entry(key).or_insert_with(|| MutexSt {
            held_by: None,
            release: VClock::new(),
        })
    }

    /// Consumes the next decision: replayed from the prefix when available,
    /// otherwise produced by the decider and appended to the path.
    fn next_choice(
        &mut self,
        kind: Kind,
        arity: usize,
        cur_runnable: bool,
        options: Option<&[usize]>,
    ) -> usize {
        debug_assert!(arity >= 1);
        if self.pos < self.path.len() {
            let b = &self.path[self.pos];
            if b.kind == kind && b.arity == arity {
                let chosen = b.chosen.min(arity - 1);
                self.pos += 1;
                return chosen;
            }
            // A shrunk prefix changed downstream structure; drop the stale
            // suffix and continue with fresh default decisions.
            self.path.truncate(self.pos);
        }
        let prev_active = self.active;
        let chosen = match &mut self.decider {
            Decider::Exhaustive => 0,
            Decider::Random {
                rng,
                priorities,
                change_points,
                switches,
                low,
            } => match (kind, options) {
                (Kind::Switch, Some(opts)) | (Kind::Rescue, Some(opts)) => {
                    *switches += 1;
                    let max_tid = opts.iter().copied().max().unwrap_or(0).max(prev_active);
                    while priorities.len() <= max_tid {
                        priorities.push(rng.next() | (1 << 32));
                    }
                    if change_points.contains(switches) {
                        *low -= 1;
                        priorities[prev_active] = *low;
                    }
                    let mut best = 0;
                    for (i, t) in opts.iter().enumerate() {
                        if priorities[*t] > priorities[opts[best]] {
                            best = i;
                        }
                    }
                    best
                }
                _ => (rng.next() % arity as u64) as usize,
            },
        };
        self.path.push(Branch {
            kind,
            chosen,
            arity,
            cur_runnable,
            preempt_before: self.preemptions,
        });
        self.pos += 1;
        chosen
    }

    /// Decides which thread runs next. `me_runnable` marks whether the
    /// deciding thread could itself continue (option 0, no preemption).
    /// Returns `None` after recording a deadlock failure.
    fn decide_switch(&mut self, me: usize, me_runnable: bool) -> Option<usize> {
        let mut options = Vec::new();
        if me_runnable {
            options.push(me);
        }
        for t in 0..self.threads.len() {
            if t != me && self.threads[t].status == ThStatus::Runnable {
                options.push(t);
            }
        }
        if options.is_empty() {
            let sleepers: Vec<usize> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, th)| {
                    matches!(th.status, ThStatus::Blocked(BlockOn::Condvar { timed: true, .. }))
                })
                .map(|(t, _)| t)
                .collect();
            if sleepers.is_empty() {
                let msg = format!("deadlock: {}", self.render_threads());
                self.fail(msg);
                return None;
            }
            let idx = self.next_choice(Kind::Rescue, sleepers.len(), false, Some(&sleepers));
            let t = sleepers[idx];
            self.timeout_rescues += 1;
            self.threads[t].status = ThStatus::Runnable;
            self.threads[t].wake_was_timeout = true;
            if self.cfg.trace {
                self.trace_ev(t, "woken by wait_for timeout (deadlock rescue)".into());
            }
            return Some(t);
        }
        let idx = self.next_choice(Kind::Switch, options.len(), me_runnable, Some(&options));
        let chosen = options[idx];
        if me_runnable && chosen != me {
            self.preemptions += 1;
        }
        Some(chosen)
    }

    fn render_threads(&self) -> String {
        let mut parts = Vec::new();
        for (t, th) in self.threads.iter().enumerate() {
            let s = match &th.status {
                ThStatus::Runnable => "runnable".to_string(),
                ThStatus::Finished => "finished".to_string(),
                ThStatus::Blocked(BlockOn::Mutex(m)) => format!("blocked on Mutex#{m}"),
                ThStatus::Blocked(BlockOn::Condvar { cv, timed }) => {
                    if *timed {
                        format!("in Condvar#{cv}.wait_for")
                    } else {
                        format!("in Condvar#{cv}.wait")
                    }
                }
                ThStatus::Blocked(BlockOn::Join(j)) => format!("joining t{j}"),
            };
            parts.push(format!("t{t} {s}"));
        }
        parts.join(", ")
    }

    // -- memory model -------------------------------------------------------

    /// Joins the thread clock with the global SeqCst clock (both ways).
    /// SeqCst operations are modeled as globally synchronizing — slightly
    /// stronger than C11, matching the interleaving intuition SeqCst code is
    /// written against.
    fn sc_sync(&mut self, me: usize) {
        let mut c = self.sc_clock.clone();
        c.join(&self.threads[me].clock);
        self.threads[me].clock = c.clone();
        self.sc_clock = c;
    }

    fn mem_load(&mut self, me: usize, key: u32, init: u64, ord: Ordering) -> (u64, usize) {
        let sc = matches!(ord, Ordering::SeqCst);
        if sc {
            self.sc_sync(me);
        }
        let clock = self.threads[me].clock.clone();
        let (floor, len) = {
            let loc = self.loc_entry(key, init);
            if loc.seen.len() <= me {
                loc.seen.resize(me + 1, 0);
            }
            let mut floor = loc.seen[me];
            for (i, ev) in loc.history.iter().enumerate().skip(floor + 1) {
                // A store the loading thread already knows happened (per its
                // clock) forces the read floor up: reading anything older
                // would violate coherence / happens-before.
                if ev.stamp != 0 && clock.get(ev.tid) >= ev.stamp {
                    floor = i;
                }
            }
            if sc {
                if let Some(s) = loc.last_sc {
                    floor = floor.max(s);
                }
            }
            (floor, loc.history.len())
        };
        let visible = len - floor;
        let pick = if visible > 1 {
            self.next_choice(Kind::Value, visible, false, None)
        } else {
            0
        };
        let idx = floor + pick;
        let (value, release) = {
            let loc = self.locations.get_mut(&key).expect("location vanished");
            loc.seen[me] = loc.seen[me].max(idx);
            let ev = &loc.history[idx];
            (ev.value, ev.release.clone())
        };
        if acquiring(ord) {
            if let Some(rc) = release {
                self.threads[me].clock.join(&rc);
            }
        }
        (value, visible)
    }

    fn mem_store(&mut self, me: usize, key: u32, init: u64, val: u64, ord: Ordering) {
        let sc = matches!(ord, Ordering::SeqCst);
        if sc {
            self.sc_sync(me);
        }
        let stamp = self.threads[me].clock.incr(me);
        let release = if releasing(ord) {
            Some(self.threads[me].clock.clone())
        } else {
            None
        };
        let loc = self.loc_entry(key, init);
        if loc.seen.len() <= me {
            loc.seen.resize(me + 1, 0);
        }
        loc.history.push(StoreEv {
            value: val,
            tid: me,
            stamp,
            release,
        });
        let idx = loc.history.len() - 1;
        loc.seen[me] = idx;
        if sc {
            loc.last_sc = Some(idx);
        }
    }

    /// Read-modify-write: atomically reads the *latest* store (RMW atomicity)
    /// and appends the new value. Non-releasing RMWs propagate the previous
    /// release clock so release sequences survive intervening RMWs.
    fn mem_rmw(
        &mut self,
        me: usize,
        key: u32,
        init: u64,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> (u64, u64) {
        let sc = matches!(ord, Ordering::SeqCst);
        if sc {
            self.sc_sync(me);
        }
        let (old, prev_release) = {
            let loc = self.loc_entry(key, init);
            let ev = loc.history.last().expect("empty history");
            (ev.value, ev.release.clone())
        };
        if acquiring(ord) {
            if let Some(rc) = &prev_release {
                self.threads[me].clock.join(rc);
            }
        }
        let stamp = self.threads[me].clock.incr(me);
        let release = if releasing(ord) {
            let mut c = self.threads[me].clock.clone();
            if let Some(p) = &prev_release {
                c.join(p);
            }
            Some(c)
        } else {
            prev_release
        };
        let newv = f(old);
        let loc = self.loc_entry(key, init);
        if loc.seen.len() <= me {
            loc.seen.resize(me + 1, 0);
        }
        loc.history.push(StoreEv {
            value: newv,
            tid: me,
            stamp,
            release,
        });
        let idx = loc.history.len() - 1;
        loc.seen[me] = idx;
        if sc {
            loc.last_sc = Some(idx);
        }
        (old, newv)
    }

    /// Compare-and-swap against the latest store. A failed CAS acts as a
    /// load of the latest value with the failure ordering.
    #[allow(clippy::too_many_arguments)]
    fn mem_cas(
        &mut self,
        me: usize,
        key: u32,
        init: u64,
        expected: u64,
        newv: u64,
        ok: Ordering,
        err: Ordering,
    ) -> Result<u64, u64> {
        let cur = {
            let loc = self.loc_entry(key, init);
            loc.history.last().expect("empty history").value
        };
        if cur == expected {
            let (old, _) = self.mem_rmw(me, key, init, ok, |_| newv);
            Ok(old)
        } else {
            if matches!(err, Ordering::SeqCst) {
                self.sc_sync(me);
            }
            let prev_release = {
                let loc = self.loc_entry(key, init);
                let idx = loc.history.len() - 1;
                if loc.seen.len() <= me {
                    loc.seen.resize(me + 1, 0);
                }
                loc.seen[me] = idx;
                loc.history[idx].release.clone()
            };
            if acquiring(err) {
                if let Some(rc) = prev_release {
                    self.threads[me].clock.join(&rc);
                }
            }
            Err(cur)
        }
    }
}

// ---------------------------------------------------------------------------
// The shared model (one run)
// ---------------------------------------------------------------------------

/// Shared state of one model run. All modeled threads serialize through
/// `state`; `cv` is the single wakeup channel (token handoffs, unblocks,
/// run completion all use `notify_all`).
pub(crate) struct Model {
    state: StdMutex<RunState>,
    cv: StdCondvar,
    os: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

enum FinishHow {
    Ok,
    Abandoned,
    Panicked(String),
}

impl Model {
    /// Parks until this thread owns the scheduling token (or the run is
    /// being abandoned, in which case the thread unwinds).
    fn wait_turn<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, RunState>,
        me: usize,
    ) -> StdMutexGuard<'a, RunState> {
        loop {
            if st.abandoning && st.active == me {
                drop(st);
                abandon();
            }
            if !st.abandoning
                && st.active == me
                && st.threads[me].status == ThStatus::Runnable
            {
                return st;
            }
            st = self.cv.wait(st).expect("loomlite state poisoned");
        }
    }

    /// Schedule point before every modeled operation: waits for the token,
    /// charges the step budget, and lets the decider pick who proceeds.
    fn enter(&self, me: usize) -> StdMutexGuard<'_, RunState> {
        let st = self.state.lock().expect("loomlite state poisoned");
        let mut st = self.wait_turn(st, me);
        st.steps += 1;
        if st.steps > st.cfg.max_steps {
            let budget = st.cfg.max_steps;
            st.fail(format!(
                "step budget ({budget}) exceeded — livelock or unbounded loop in model"
            ));
            self.cv.notify_all();
            drop(st);
            abandon();
        }
        let next = st
            .decide_switch(me, true)
            .expect("deadlock impossible: deciding thread is runnable");
        if next != me {
            st.active = next;
            self.cv.notify_all();
            st = self.wait_turn(st, me);
        }
        st
    }

    /// Blocks the calling thread (its status must already be `Blocked`),
    /// hands the token to another thread, and parks until rewoken.
    fn block_and_wait<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, RunState>,
        me: usize,
    ) -> StdMutexGuard<'a, RunState> {
        match st.decide_switch(me, false) {
            Some(next) => {
                st.active = next;
                self.cv.notify_all();
                self.wait_turn(st, me)
            }
            None => {
                // Deadlock recorded; unwind this thread, the finish protocol
                // reaps the rest.
                self.cv.notify_all();
                drop(st);
                abandon();
            }
        }
    }

    /// When abandoning, forces the next unfinished thread to wake and unwind.
    fn director_next(&self, st: &mut RunState) {
        debug_assert!(st.abandoning);
        match st
            .threads
            .iter()
            .position(|t| t.status != ThStatus::Finished)
        {
            Some(t) => {
                st.threads[t].status = ThStatus::Runnable;
                st.active = t;
            }
            None => st.done = true,
        }
        self.cv.notify_all();
    }

    fn finish(&self, me: usize, how: FinishHow) {
        let mut st = self.state.lock().expect("loomlite state poisoned");
        match how {
            FinishHow::Ok => {}
            FinishHow::Abandoned => st.abandoning = true,
            FinishHow::Panicked(msg) => st.fail(msg),
        }
        st.threads[me].status = ThStatus::Finished;
        if st.cfg.trace {
            st.trace_ev(me, "thread finished".into());
        }
        if st.abandoning {
            self.director_next(&mut st);
            return;
        }
        for t in 0..st.threads.len() {
            if st.threads[t].status == ThStatus::Blocked(BlockOn::Join(me)) {
                st.threads[t].status = ThStatus::Runnable;
            }
        }
        if st
            .threads
            .iter()
            .all(|t| t.status == ThStatus::Finished)
        {
            st.done = true;
            self.cv.notify_all();
            return;
        }
        match st.decide_switch(me, false) {
            Some(next) => {
                st.active = next;
                self.cv.notify_all();
            }
            None => {
                // Deadlock among the survivors.
                self.director_next(&mut st);
            }
        }
    }

    // -- operations invoked from `sync` / `thread` -------------------------

    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().expect("loomlite state poisoned");
        let tid = st.threads.len();
        assert!(
            tid < MAX_THREADS,
            "loomlite: more than {MAX_THREADS} modeled threads"
        );
        let parent = st.active;
        let clock = st.threads[parent].clock.clone();
        st.threads.push(Th {
            status: ThStatus::Runnable,
            clock,
            wake_was_timeout: false,
        });
        if st.cfg.trace {
            st.trace_ev(parent, format!("spawned t{tid}"));
        }
        tid
    }

    pub(crate) fn op_yield(&self, me: usize) {
        let st = self.enter(me);
        drop(st);
    }

    pub(crate) fn op_load(
        &self,
        me: usize,
        obj: &ObjId,
        init: u64,
        ord: Ordering,
        ty: &'static str,
    ) -> u64 {
        let mut st = self.enter(me);
        let key = st.obj_key(obj);
        let (value, visible) = st.mem_load(me, key, init, ord);
        if st.cfg.trace {
            st.trace_ev(
                me,
                format!(
                    "{ty}#{key}.load({}) -> {value} [{visible} visible]",
                    ord_name(ord)
                ),
            );
        }
        value
    }

    pub(crate) fn op_store(
        &self,
        me: usize,
        obj: &ObjId,
        init: u64,
        val: u64,
        ord: Ordering,
        ty: &'static str,
    ) {
        let mut st = self.enter(me);
        let key = st.obj_key(obj);
        st.mem_store(me, key, init, val, ord);
        if st.cfg.trace {
            st.trace_ev(me, format!("{ty}#{key}.store({val}, {})", ord_name(ord)));
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn op_rmw(
        &self,
        me: usize,
        obj: &ObjId,
        init: u64,
        ord: Ordering,
        ty: &'static str,
        name: &'static str,
        f: impl FnOnce(u64) -> u64,
    ) -> (u64, u64) {
        let mut st = self.enter(me);
        let key = st.obj_key(obj);
        let (old, newv) = st.mem_rmw(me, key, init, ord, f);
        if st.cfg.trace {
            st.trace_ev(
                me,
                format!(
                    "{ty}#{key}.{name}({}) -> {old} (now {newv})",
                    ord_name(ord)
                ),
            );
        }
        (old, newv)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn op_cas(
        &self,
        me: usize,
        obj: &ObjId,
        init: u64,
        expected: u64,
        newv: u64,
        ok: Ordering,
        err: Ordering,
        ty: &'static str,
    ) -> Result<u64, u64> {
        let mut st = self.enter(me);
        let key = st.obj_key(obj);
        let r = st.mem_cas(me, key, init, expected, newv, ok, err);
        if st.cfg.trace {
            let outcome = match &r {
                Ok(old) => format!("ok (was {old}, now {newv})"),
                Err(cur) => format!("failed (saw {cur})"),
            };
            st.trace_ev(
                me,
                format!(
                    "{ty}#{key}.compare_exchange({expected} -> {newv}, {}, {}) {outcome}",
                    ord_name(ok),
                    ord_name(err)
                ),
            );
        }
        r
    }

    pub(crate) fn op_mutex_lock(&self, me: usize, obj: &ObjId) {
        let mut st = self.enter(me);
        let key = st.obj_key(obj);
        loop {
            let held = st.mutex_entry(key).held_by;
            if held.is_none() {
                let rel = {
                    let m = st.mutex_entry(key);
                    m.held_by = Some(me);
                    m.release.clone()
                };
                st.threads[me].clock.join(&rel);
                if st.cfg.trace {
                    st.trace_ev(me, format!("Mutex#{key}.lock"));
                }
                return;
            }
            st.threads[me].status = ThStatus::Blocked(BlockOn::Mutex(key));
            st = self.block_and_wait(st, me);
        }
    }

    pub(crate) fn op_mutex_try_lock(&self, me: usize, obj: &ObjId) -> bool {
        let mut st = self.enter(me);
        let key = st.obj_key(obj);
        if st.mutex_entry(key).held_by.is_none() {
            let rel = {
                let m = st.mutex_entry(key);
                m.held_by = Some(me);
                m.release.clone()
            };
            st.threads[me].clock.join(&rel);
            if st.cfg.trace {
                st.trace_ev(me, format!("Mutex#{key}.try_lock -> acquired"));
            }
            true
        } else {
            if st.cfg.trace {
                st.trace_ev(me, format!("Mutex#{key}.try_lock -> busy"));
            }
            false
        }
    }

    pub(crate) fn op_mutex_unlock(&self, me: usize, obj: &ObjId) {
        let mut st = self.enter(me);
        let key = st.obj_key(obj);
        let clock = st.threads[me].clock.clone();
        {
            let m = st.mutex_entry(key);
            m.held_by = None;
            m.release = clock;
        }
        for t in 0..st.threads.len() {
            if st.threads[t].status == ThStatus::Blocked(BlockOn::Mutex(key)) {
                st.threads[t].status = ThStatus::Runnable;
            }
        }
        if st.cfg.trace {
            st.trace_ev(me, format!("Mutex#{key}.unlock"));
        }
    }

    /// Condvar wait: atomically releases the mutex and blocks; on wakeup
    /// (notify, or timeout rescue for timed waits) reacquires the mutex.
    /// Returns whether the wakeup was a timeout rescue.
    pub(crate) fn op_cv_wait(&self, me: usize, cv: &ObjId, mx: &ObjId, timed: bool) -> bool {
        let mut st = self.enter(me);
        let cv_key = st.obj_key(cv);
        let mx_key = st.obj_key(mx);
        let clock = st.threads[me].clock.clone();
        {
            let m = st.mutex_entry(mx_key);
            debug_assert_eq!(m.held_by, Some(me), "wait on a mutex we don't hold");
            m.held_by = None;
            m.release = clock;
        }
        for t in 0..st.threads.len() {
            if st.threads[t].status == ThStatus::Blocked(BlockOn::Mutex(mx_key)) {
                st.threads[t].status = ThStatus::Runnable;
            }
        }
        if st.cfg.trace {
            let kind = if timed { "wait_for" } else { "wait" };
            st.trace_ev(me, format!("Condvar#{cv_key}.{kind} (releases Mutex#{mx_key})"));
        }
        st.threads[me].wake_was_timeout = false;
        st.threads[me].status = ThStatus::Blocked(BlockOn::Condvar { cv: cv_key, timed });
        st = self.block_and_wait(st, me);
        let timed_out = st.threads[me].wake_was_timeout;
        // Reacquire the mutex.
        loop {
            let held = st.mutex_entry(mx_key).held_by;
            if held.is_none() {
                let rel = {
                    let m = st.mutex_entry(mx_key);
                    m.held_by = Some(me);
                    m.release.clone()
                };
                st.threads[me].clock.join(&rel);
                if st.cfg.trace {
                    let how = if timed_out { "timeout" } else { "notify" };
                    st.trace_ev(me, format!("Condvar#{cv_key} woke ({how}), relocked Mutex#{mx_key}"));
                }
                return timed_out;
            }
            st.threads[me].status = ThStatus::Blocked(BlockOn::Mutex(mx_key));
            st = self.block_and_wait(st, me);
        }
    }

    pub(crate) fn op_cv_notify(&self, me: usize, cv: &ObjId, all: bool) {
        let mut st = self.enter(me);
        let cv_key = st.obj_key(cv);
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, th)| {
                matches!(&th.status, ThStatus::Blocked(BlockOn::Condvar { cv, .. }) if *cv == cv_key)
            })
            .map(|(t, _)| t)
            .collect();
        if waiters.is_empty() {
            if st.cfg.trace {
                st.trace_ev(me, format!("Condvar#{cv_key}.notify (no waiters)"));
            }
            return;
        }
        let woken: Vec<usize> = if all {
            waiters
        } else if waiters.len() > 1 {
            // Which waiter a notify_one wakes is itself nondeterministic.
            let idx = st.next_choice(Kind::Value, waiters.len(), false, None);
            vec![waiters[idx]]
        } else {
            waiters
        };
        for &t in &woken {
            st.threads[t].status = ThStatus::Runnable;
            st.threads[t].wake_was_timeout = false;
        }
        if st.cfg.trace {
            let kind = if all { "notify_all" } else { "notify_one" };
            let list: Vec<String> = woken.iter().map(|t| format!("t{t}")).collect();
            st.trace_ev(me, format!("Condvar#{cv_key}.{kind} wakes {}", list.join(",")));
        }
    }

    pub(crate) fn op_join(&self, me: usize, target: usize) {
        let mut st = self.enter(me);
        while st.threads[target].status != ThStatus::Finished {
            st.threads[me].status = ThStatus::Blocked(BlockOn::Join(target));
            st = self.block_and_wait(st, me);
        }
        // Join edge: everything the target did happens-before the join.
        let tc = st.threads[target].clock.clone();
        st.threads[me].clock.join(&tc);
        if st.cfg.trace {
            st.trace_ev(me, format!("joined t{target}"));
        }
    }
}

/// Body wrapper for every modeled OS thread: installs the context, runs the
/// user closure, and drives the finish protocol whatever the outcome.
pub(crate) fn enter_modeled_thread(model: Arc<Model>, tid: usize, f: impl FnOnce()) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            model: model.clone(),
            tid,
        })
    });
    let result = catch_unwind(AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(()) => model.finish(tid, FinishHow::Ok),
        Err(payload) => {
            if payload.downcast_ref::<Abandon>().is_some() {
                model.finish(tid, FinishHow::Abandoned);
            } else {
                model.finish(tid, FinishHow::Panicked(panic_message(&payload)));
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = LAST_PANIC.with(|c| c.borrow_mut().take()) {
        // Lazily formatted payloads (e.g. `panic!("{x}")`) don't downcast;
        // the session hook rendered them for us.
        s
    } else {
        "panic with non-string payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Configuration for a model-checking session. See the crate docs for the
/// exploration strategy.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Max preemptions per schedule in the exhaustive phase (`None` = no
    /// bound). Default 2 — empirically catches almost all bugs (PCT/Chess).
    pub preemption_bound: Option<usize>,
    /// Cap on exhaustive schedules before declaring the tree incomplete.
    pub max_schedules: u64,
    /// Additional PCT-style random schedules run when the exhaustive phase
    /// was pruned (by the bound) or capped.
    pub random_schedules: u64,
    /// Seed for the random phase. Overridable via `LOOMLITE_SEED`.
    pub seed: u64,
    /// Number of PCT priority-change points per random schedule.
    pub pct_depth: usize,
    /// Per-run step budget: exceeding it fails the run (livelock guard).
    pub max_steps: usize,
    /// Replay budget for shrinking a failing schedule.
    pub shrink_budget: u64,
    /// Treat any timeout rescue (see crate docs) as a failure — proves a
    /// wakeup protocol never relies on its timeout.
    pub fail_on_timeout_rescue: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

/// What one session learned: schedule counts, completeness, and timings.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules explored by the bounded-exhaustive DFS phase.
    pub exhaustive_schedules: u64,
    /// Schedules explored by the seeded random (PCT) phase.
    pub random_schedules: u64,
    /// Whether the exhaustive phase ran the (bounded) tree to exhaustion.
    pub complete: bool,
    /// The preemption bound in force.
    pub preemption_bound: Option<usize>,
    /// Schedule alternatives pruned by the preemption bound.
    pub preemption_pruned: u64,
    /// Total timeout rescues across all schedules (see crate docs).
    pub timeout_rescues: u64,
    /// Deepest decision path seen.
    pub max_depth: usize,
    /// Seed used for the random phase.
    pub seed: u64,
    /// Wall-clock time for the whole session.
    pub wall: Duration,
}

impl Report {
    /// Total schedules explored.
    pub fn schedules(&self) -> u64 {
        self.exhaustive_schedules + self.random_schedules
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} schedules ({} exhaustive{}, {} random, seed {:#x}), bound={:?}, pruned={}, max-depth={}, rescues={}, {:.1?}",
            self.schedules(),
            self.exhaustive_schedules,
            if self.complete { " [complete]" } else { " [capped]" },
            self.random_schedules,
            self.seed,
            self.preemption_bound,
            self.preemption_pruned,
            self.max_depth,
            self.timeout_rescues,
            self.wall,
        )
    }
}

/// A failing schedule: the assertion message, the shrunk event trace, and a
/// compact decision string that reproduces it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The panic/deadlock/budget message from the failing run.
    pub message: String,
    /// Human-readable event trace of the shrunk failing schedule.
    pub trace: String,
    /// Compact decision-path encoding of the failing schedule.
    pub schedule: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "loomlite: model failed: {}", self.message)?;
        writeln!(f, "schedule: {}", self.schedule)?;
        writeln!(f, "trace of the shrunk failing schedule:")?;
        write!(f, "{}", self.trace)
    }
}

struct RunResult {
    path: Vec<Branch>,
    failure: Option<String>,
    timeout_rescues: u64,
    trace: Vec<Event>,
}

impl Builder {
    /// A builder with the defaults described on each field.
    pub fn new() -> Self {
        let seed = std::env::var("LOOMLITE_SEED")
            .ok()
            .and_then(|s| {
                let s = s.trim();
                if let Some(hex) = s.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).ok()
                } else {
                    s.parse().ok()
                }
            })
            .unwrap_or(0x5eed_0d5e_ed0d_5eed);
        Builder {
            preemption_bound: Some(2),
            max_schedules: 50_000,
            random_schedules: 200,
            seed,
            pct_depth: 3,
            max_steps: 20_000,
            shrink_budget: 400,
            fail_on_timeout_rescue: false,
        }
    }

    /// Runs the model. On failure, prints the shrunk trace to stderr and
    /// panics (so `cargo test` reports it). Returns the exploration report.
    pub fn check<F>(self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.check_quiet(f) {
            Ok(report) => report,
            Err(failure) => {
                eprintln!("{failure}");
                panic!("loomlite: model failed: {}", failure.message);
            }
        }
    }

    /// Like [`Builder::check`] but returns the failure instead of panicking.
    pub fn check_quiet<F>(self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let job: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        // For the whole session, route panic messages into a thread-local
        // (failing replays would otherwise spam dozens of panic banners, and
        // formatted payloads can only be rendered inside a hook). Restored
        // on every exit path by the guard.
        let _hook_guard = HookGuard::install();
        let start = Instant::now();
        let mut report = Report {
            exhaustive_schedules: 0,
            random_schedules: 0,
            complete: false,
            preemption_bound: self.preemption_bound,
            preemption_pruned: 0,
            timeout_rescues: 0,
            max_depth: 0,
            seed: self.seed,
            wall: Duration::ZERO,
        };

        let failing = |path: Vec<Branch>, msg: String, report: &mut Report| {
            report.wall = start.elapsed();
            self.shrink_and_render(&job, path, msg)
        };

        // Phase 1: bounded-exhaustive DFS.
        let mut prefix: Vec<Branch> = Vec::new();
        let mut pruned: u64 = 0;
        loop {
            let res = self.run_once(&job, Decider::Exhaustive, prefix, false);
            report.exhaustive_schedules += 1;
            report.max_depth = report.max_depth.max(res.path.len());
            report.timeout_rescues += res.timeout_rescues;
            if let Some(msg) = self.run_failure(&res) {
                return Err(failing(res.path, msg, &mut report));
            }
            if report.exhaustive_schedules >= self.max_schedules {
                break;
            }
            let mut path = res.path;
            if !advance(&mut path, self.preemption_bound, &mut pruned) {
                report.complete = true;
                break;
            }
            prefix = path;
        }
        report.preemption_pruned = pruned;

        // Phase 2: seeded random (PCT) schedules — only worthwhile when the
        // bounded tree did not already cover everything.
        let need_random = !report.complete || pruned > 0;
        if need_random {
            for i in 0..self.random_schedules {
                let decider = self.random_decider(i);
                let res = self.run_once(&job, decider, Vec::new(), false);
                report.random_schedules += 1;
                report.max_depth = report.max_depth.max(res.path.len());
                report.timeout_rescues += res.timeout_rescues;
                if let Some(msg) = self.run_failure(&res) {
                    let msg = format!("{msg} [random schedule {i}, seed {:#x}]", self.seed);
                    return Err(failing(res.path, msg, &mut report));
                }
            }
        }

        report.wall = start.elapsed();
        Ok(report)
    }

    fn random_decider(&self, run: u64) -> Decider {
        let mut rng = SplitMix(self.seed ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5_5A5A);
        let mut change_points = Vec::with_capacity(self.pct_depth);
        for _ in 0..self.pct_depth {
            change_points.push((rng.next() % 48) as usize + 1);
        }
        Decider::Random {
            rng,
            priorities: Vec::new(),
            change_points,
            switches: 0,
            low: 1 << 31,
        }
    }

    fn run_failure(&self, res: &RunResult) -> Option<String> {
        if let Some(m) = &res.failure {
            return Some(m.clone());
        }
        if self.fail_on_timeout_rescue && res.timeout_rescues > 0 {
            return Some(format!(
                "wait_for timeout rescue was required {} time(s) — a wakeup was lost \
                 (the protocol relied on its timeout)",
                res.timeout_rescues
            ));
        }
        None
    }

    /// Executes one schedule. `prefix` replays recorded decisions; fresh
    /// decisions come from `decider`. Fully deterministic given both.
    fn run_once(
        &self,
        job: &Arc<dyn Fn() + Send + Sync>,
        decider: Decider,
        prefix: Vec<Branch>,
        trace: bool,
    ) -> RunResult {
        let cfg = RunCfg {
            max_steps: self.max_steps,
            trace,
        };
        let model = Arc::new(Model {
            state: StdMutex::new(RunState::new(cfg, decider, prefix)),
            cv: StdCondvar::new(),
            os: StdMutex::new(Vec::new()),
        });
        {
            let mut st = model.state.lock().expect("loomlite state poisoned");
            st.threads.push(Th {
                status: ThStatus::Runnable,
                clock: VClock::new(),
                wake_was_timeout: false,
            });
            st.active = 0;
        }
        let m2 = model.clone();
        let j = job.clone();
        let h0 = std::thread::Builder::new()
            .name("loomlite-t0".into())
            .spawn(move || enter_modeled_thread(m2, 0, move || j()))
            .expect("failed to spawn model root thread");
        model.os.lock().expect("os handle list poisoned").push(h0);

        // Wait for the run to finish, with a wedge guard: a correct engine
        // always completes (abandonment reaps blocked threads), so a stall
        // here is an internal error worth failing loudly on.
        {
            let mut st = model.state.lock().expect("loomlite state poisoned");
            let deadline = Instant::now() + Duration::from_secs(120);
            while !st.done {
                let (g, _) = model
                    .cv
                    .wait_timeout(st, Duration::from_millis(500))
                    .expect("loomlite state poisoned");
                st = g;
                if !st.done && Instant::now() > deadline {
                    panic!("loomlite: model run wedged (internal scheduler error)");
                }
            }
        }
        loop {
            let hs: Vec<_> = model
                .os
                .lock()
                .expect("os handle list poisoned")
                .drain(..)
                .collect();
            if hs.is_empty() {
                break;
            }
            for h in hs {
                let _ = h.join();
            }
        }
        let mut st = model.state.lock().expect("loomlite state poisoned");
        RunResult {
            path: std::mem::take(&mut st.path),
            failure: st.failure.take(),
            timeout_rescues: st.timeout_rescues,
            trace: std::mem::take(&mut st.trace),
        }
    }

    /// Greedily resets decision choices to their defaults while the failure
    /// persists, then replays the minimized schedule with tracing on.
    fn shrink_and_render(
        &self,
        job: &Arc<dyn Fn() + Send + Sync>,
        mut path: Vec<Branch>,
        message: String,
    ) -> Failure {
        let mut budget = self.shrink_budget;
        'outer: loop {
            for i in 0..path.len() {
                if path[i].chosen == 0 {
                    continue;
                }
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                let mut cand: Vec<Branch> = path[..=i].to_vec();
                cand[i].chosen = 0;
                let res = self.run_once(job, Decider::Exhaustive, cand, false);
                if self.run_failure(&res).is_some() {
                    // Still fails with a lexicographically smaller schedule.
                    path = res.path;
                    continue 'outer;
                }
            }
            break;
        }

        // Final traced replay of the shrunk schedule.
        let res = self.run_once(job, Decider::Exhaustive, path, true);
        let message = res.failure.unwrap_or(message);
        let mut trace = String::new();
        for (i, ev) in res.trace.iter().enumerate() {
            trace.push_str(&format!("  #{:<3} t{}  {}\n", i, ev.tid, ev.msg));
        }
        Failure {
            message,
            trace,
            schedule: render_schedule(&res.path),
        }
    }
}

/// Replaces the panic hook with a quiet message-capturing one for the
/// duration of a checking session; restores the previous hook on drop.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
struct HookGuard(Option<PanicHook>);

impl HookGuard {
    fn install() -> Self {
        let saved = std::panic::take_hook();
        std::panic::set_hook(Box::new(|info| {
            let msg = info.to_string();
            LAST_PANIC.with(|c| *c.borrow_mut() = Some(msg));
        }));
        HookGuard(Some(saved))
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        if let Some(h) = self.0.take() {
            std::panic::set_hook(h);
        }
    }
}

fn render_schedule(path: &[Branch]) -> String {
    let mut s = String::new();
    for b in path {
        let k = match b.kind {
            Kind::Switch => 's',
            Kind::Value => 'v',
            Kind::Rescue => 'r',
        };
        s.push_str(&format!("{k}{}/{} ", b.chosen, b.arity));
    }
    s.trim_end().to_string()
}

/// DFS backtracking: advances the deepest incrementable decision (honoring
/// the preemption bound for `Switch` branches) and truncates everything
/// below it. Returns `false` when the tree is exhausted.
fn advance(path: &mut Vec<Branch>, bound: Option<usize>, pruned: &mut u64) -> bool {
    while let Some(b) = path.last_mut() {
        let next = b.chosen + 1;
        if next < b.arity {
            let feasible = match b.kind {
                Kind::Switch if b.cur_runnable => {
                    // options[0] is "continue current thread"; any other
                    // choice preempts it.
                    bound.is_none_or(|bd| b.preempt_before < bd)
                }
                _ => true,
            };
            if feasible {
                b.chosen = next;
                return true;
            }
            *pruned += (b.arity - next) as u64;
        }
        path.pop();
    }
    false
}

/// Checks `f` with default settings: exhaustive exploration with preemption
/// bound 2, then 200 seeded random schedules when the bound pruned anything.
/// Panics with a shrunk trace on failure.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}

// ---------------------------------------------------------------------------
// Registration of spawned OS handles (used by `thread::spawn`)
// ---------------------------------------------------------------------------

impl Model {
    pub(crate) fn adopt_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os.lock().expect("os handle list poisoned").push(h);
    }
}
