//! Modeled drop-in replacements for `std::sync` / `parking_lot` primitives.
//!
//! Every type wraps the *real* primitive and delegates to it when no model
//! is active on the current thread (fallback mode), so code compiled against
//! these types still runs correctly under a normal test suite. Under an
//! active model, operations are routed through the scheduler and the
//! weak-memory model instead; the real primitive is kept mirrored to the
//! latest modeled value so `get_mut`/`into_inner` stay truthful.
//!
//! The `Mutex`/`Condvar` API mirrors the workspace's vendored `parking_lot`
//! shim (no poisoning, `Condvar::wait(&mut MutexGuard)`, `wait_for`).

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

use crate::exec::{current, ObjId};

/// Modeled atomic integer and pointer types plus the standard [`Ordering`].
///
/// [`Ordering`]: std::sync::atomic::Ordering
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::super::exec::{current, ObjId};

    macro_rules! int_atomic {
        ($(#[$meta:meta])* $Name:ident, $Std:ident, $T:ty) => {
            $(#[$meta])*
            pub struct $Name {
                real: std::sync::atomic::$Std,
                id: ObjId,
            }

            impl $Name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $T) -> Self {
                    Self {
                        real: std::sync::atomic::$Std::new(v),
                        id: ObjId::new(),
                    }
                }

                fn init(&self) -> u64 {
                    self.real.load(Ordering::Relaxed) as u64
                }

                /// Atomic load with the given ordering.
                pub fn load(&self, ord: Ordering) -> $T {
                    match current() {
                        Some(ctx) => ctx
                            .model
                            .op_load(ctx.tid, &self.id, self.init(), ord, stringify!($Name))
                            as $T,
                        None => self.real.load(ord),
                    }
                }

                /// Atomic store with the given ordering.
                pub fn store(&self, val: $T, ord: Ordering) {
                    match current() {
                        Some(ctx) => {
                            ctx.model.op_store(
                                ctx.tid,
                                &self.id,
                                self.init(),
                                val as u64,
                                ord,
                                stringify!($Name),
                            );
                            self.real.store(val, Ordering::Relaxed);
                        }
                        None => self.real.store(val, ord),
                    }
                }

                /// Atomic swap; returns the previous value.
                pub fn swap(&self, val: $T, ord: Ordering) -> $T {
                    match current() {
                        Some(ctx) => {
                            let (old, newv) = ctx.model.op_rmw(
                                ctx.tid,
                                &self.id,
                                self.init(),
                                ord,
                                stringify!($Name),
                                "swap",
                                |_| val as u64,
                            );
                            self.real.store(newv as $T, Ordering::Relaxed);
                            old as $T
                        }
                        None => self.real.swap(val, ord),
                    }
                }

                /// Atomic wrapping add; returns the previous value.
                pub fn fetch_add(&self, val: $T, ord: Ordering) -> $T {
                    match current() {
                        Some(ctx) => {
                            let (old, newv) = ctx.model.op_rmw(
                                ctx.tid,
                                &self.id,
                                self.init(),
                                ord,
                                stringify!($Name),
                                "fetch_add",
                                |o| (o as $T).wrapping_add(val) as u64,
                            );
                            self.real.store(newv as $T, Ordering::Relaxed);
                            old as $T
                        }
                        None => self.real.fetch_add(val, ord),
                    }
                }

                /// Atomic wrapping subtract; returns the previous value.
                pub fn fetch_sub(&self, val: $T, ord: Ordering) -> $T {
                    match current() {
                        Some(ctx) => {
                            let (old, newv) = ctx.model.op_rmw(
                                ctx.tid,
                                &self.id,
                                self.init(),
                                ord,
                                stringify!($Name),
                                "fetch_sub",
                                |o| (o as $T).wrapping_sub(val) as u64,
                            );
                            self.real.store(newv as $T, Ordering::Relaxed);
                            old as $T
                        }
                        None => self.real.fetch_sub(val, ord),
                    }
                }

                /// Atomic bitwise or; returns the previous value.
                pub fn fetch_or(&self, val: $T, ord: Ordering) -> $T {
                    match current() {
                        Some(ctx) => {
                            let (old, newv) = ctx.model.op_rmw(
                                ctx.tid,
                                &self.id,
                                self.init(),
                                ord,
                                stringify!($Name),
                                "fetch_or",
                                |o| ((o as $T) | val) as u64,
                            );
                            self.real.store(newv as $T, Ordering::Relaxed);
                            old as $T
                        }
                        None => self.real.fetch_or(val, ord),
                    }
                }

                /// Atomic compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    expected: $T,
                    new: $T,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$T, $T> {
                    match current() {
                        Some(ctx) => match ctx.model.op_cas(
                            ctx.tid,
                            &self.id,
                            self.init(),
                            expected as u64,
                            new as u64,
                            ok,
                            err,
                            stringify!($Name),
                        ) {
                            Ok(old) => {
                                self.real.store(new, Ordering::Relaxed);
                                Ok(old as $T)
                            }
                            Err(cur) => Err(cur as $T),
                        },
                        None => self.real.compare_exchange(expected, new, ok, err),
                    }
                }

                /// Weak CAS — modeled identically to the strong form
                /// (spurious failures are not modeled).
                pub fn compare_exchange_weak(
                    &self,
                    expected: $T,
                    new: $T,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$T, $T> {
                    self.compare_exchange(expected, new, ok, err)
                }

                /// Exclusive access to the value (bypasses the model; valid
                /// because `&mut self` proves no concurrent access).
                pub fn get_mut(&mut self) -> &mut $T {
                    self.real.get_mut()
                }

                /// Consumes the atomic and returns the value.
                pub fn into_inner(self) -> $T {
                    self.real.into_inner()
                }
            }

            impl Default for $Name {
                fn default() -> Self {
                    Self::new(0)
                }
            }

            impl std::fmt::Debug for $Name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($Name))
                        .field(&self.real.load(Ordering::Relaxed))
                        .finish()
                }
            }

            impl From<$T> for $Name {
                fn from(v: $T) -> Self {
                    Self::new(v)
                }
            }
        };
    }

    int_atomic!(
        /// Modeled equivalent of [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        AtomicUsize,
        usize
    );
    int_atomic!(
        /// Modeled equivalent of [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        AtomicU64,
        u64
    );
    int_atomic!(
        /// Modeled equivalent of [`std::sync::atomic::AtomicU32`].
        AtomicU32,
        AtomicU32,
        u32
    );

    /// Modeled equivalent of [`std::sync::atomic::AtomicBool`].
    pub struct AtomicBool {
        real: std::sync::atomic::AtomicBool,
        id: ObjId,
    }

    impl AtomicBool {
        /// Creates a new atomic flag.
        pub const fn new(v: bool) -> Self {
            Self {
                real: std::sync::atomic::AtomicBool::new(v),
                id: ObjId::new(),
            }
        }

        fn init(&self) -> u64 {
            self.real.load(Ordering::Relaxed) as u64
        }

        /// Atomic load with the given ordering.
        pub fn load(&self, ord: Ordering) -> bool {
            match current() {
                Some(ctx) => {
                    ctx.model
                        .op_load(ctx.tid, &self.id, self.init(), ord, "AtomicBool")
                        != 0
                }
                None => self.real.load(ord),
            }
        }

        /// Atomic store with the given ordering.
        pub fn store(&self, val: bool, ord: Ordering) {
            match current() {
                Some(ctx) => {
                    ctx.model.op_store(
                        ctx.tid,
                        &self.id,
                        self.init(),
                        val as u64,
                        ord,
                        "AtomicBool",
                    );
                    self.real.store(val, Ordering::Relaxed);
                }
                None => self.real.store(val, ord),
            }
        }

        /// Atomic swap; returns the previous value.
        pub fn swap(&self, val: bool, ord: Ordering) -> bool {
            match current() {
                Some(ctx) => {
                    let (old, newv) = ctx.model.op_rmw(
                        ctx.tid,
                        &self.id,
                        self.init(),
                        ord,
                        "AtomicBool",
                        "swap",
                        |_| val as u64,
                    );
                    self.real.store(newv != 0, Ordering::Relaxed);
                    old != 0
                }
                None => self.real.swap(val, ord),
            }
        }

        /// Atomic compare-and-exchange.
        pub fn compare_exchange(
            &self,
            expected: bool,
            new: bool,
            ok: Ordering,
            err: Ordering,
        ) -> Result<bool, bool> {
            match current() {
                Some(ctx) => match ctx.model.op_cas(
                    ctx.tid,
                    &self.id,
                    self.init(),
                    expected as u64,
                    new as u64,
                    ok,
                    err,
                    "AtomicBool",
                ) {
                    Ok(old) => {
                        self.real.store(new, Ordering::Relaxed);
                        Ok(old != 0)
                    }
                    Err(cur) => Err(cur != 0),
                },
                None => self.real.compare_exchange(expected, new, ok, err),
            }
        }

        /// Exclusive access to the value.
        pub fn get_mut(&mut self) -> &mut bool {
            self.real.get_mut()
        }

        /// Consumes the atomic and returns the value.
        pub fn into_inner(self) -> bool {
            self.real.into_inner()
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicBool")
                .field(&self.real.load(Ordering::Relaxed))
                .finish()
        }
    }

    /// Modeled equivalent of [`std::sync::atomic::AtomicPtr`]. Pointer
    /// values are modeled as their address bits.
    pub struct AtomicPtr<T> {
        real: std::sync::atomic::AtomicPtr<T>,
        id: ObjId,
    }

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic pointer.
        pub const fn new(p: *mut T) -> Self {
            Self {
                real: std::sync::atomic::AtomicPtr::new(p),
                id: ObjId::new(),
            }
        }

        fn init(&self) -> u64 {
            self.real.load(Ordering::Relaxed) as usize as u64
        }

        /// Atomic load with the given ordering.
        pub fn load(&self, ord: Ordering) -> *mut T {
            match current() {
                Some(ctx) => ctx
                    .model
                    .op_load(ctx.tid, &self.id, self.init(), ord, "AtomicPtr")
                    as usize as *mut T,
                None => self.real.load(ord),
            }
        }

        /// Atomic store with the given ordering.
        pub fn store(&self, p: *mut T, ord: Ordering) {
            match current() {
                Some(ctx) => {
                    ctx.model.op_store(
                        ctx.tid,
                        &self.id,
                        self.init(),
                        p as usize as u64,
                        ord,
                        "AtomicPtr",
                    );
                    self.real.store(p, Ordering::Relaxed);
                }
                None => self.real.store(p, ord),
            }
        }

        /// Atomic swap; returns the previous pointer.
        pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
            match current() {
                Some(ctx) => {
                    let (old, _) = ctx.model.op_rmw(
                        ctx.tid,
                        &self.id,
                        self.init(),
                        ord,
                        "AtomicPtr",
                        "swap",
                        |_| p as usize as u64,
                    );
                    self.real.store(p, Ordering::Relaxed);
                    old as usize as *mut T
                }
                None => self.real.swap(p, ord),
            }
        }

        /// Atomic compare-and-exchange.
        pub fn compare_exchange(
            &self,
            expected: *mut T,
            new: *mut T,
            ok: Ordering,
            err: Ordering,
        ) -> Result<*mut T, *mut T> {
            match current() {
                Some(ctx) => match ctx.model.op_cas(
                    ctx.tid,
                    &self.id,
                    self.init(),
                    expected as usize as u64,
                    new as usize as u64,
                    ok,
                    err,
                    "AtomicPtr",
                ) {
                    Ok(old) => {
                        self.real.store(new, Ordering::Relaxed);
                        Ok(old as usize as *mut T)
                    }
                    Err(cur) => Err(cur as usize as *mut T),
                },
                None => self.real.compare_exchange(expected, new, ok, err),
            }
        }

        /// Exclusive access to the pointer.
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.real.get_mut()
        }

        /// Consumes the atomic and returns the pointer.
        pub fn into_inner(self) -> *mut T {
            self.real.into_inner()
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicPtr")
                .field(&self.real.load(Ordering::Relaxed))
                .finish()
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar (parking_lot-shaped: no poisoning)
// ---------------------------------------------------------------------------

/// Modeled mutex with the same shape as the vendored `parking_lot` shim.
pub struct Mutex<T: ?Sized> {
    id: ObjId,
    raw: StdMutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: same bounds as std::sync::Mutex — the lock protocol (modeled or
// raw) serializes access to `data`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex {
            id: ObjId::new(),
            raw: StdMutex::new(()),
            data: UnsafeCell::new(t),
        }
    }

    /// Consumes the mutex and returns the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock. Under a model this is a schedule point and may
    /// block the modeled thread; otherwise it delegates to the raw mutex
    /// (ignoring poisoning, like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match current() {
            Some(ctx) => {
                ctx.model.op_mutex_lock(ctx.tid, &self.id);
                MutexGuard {
                    lock: self,
                    raw: None,
                    modeled: true,
                }
            }
            None => MutexGuard {
                lock: self,
                raw: Some(self.raw.lock().unwrap_or_else(|e| e.into_inner())),
                modeled: false,
            },
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match current() {
            Some(ctx) => {
                if ctx.model.op_mutex_try_lock(ctx.tid, &self.id) {
                    Some(MutexGuard {
                        lock: self,
                        raw: None,
                        modeled: true,
                    })
                } else {
                    None
                }
            }
            None => match self.raw.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    raw: Some(g),
                    modeled: false,
                }),
                Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                    lock: self,
                    raw: Some(e.into_inner()),
                    modeled: false,
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Exclusive access to the value.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Guard for a [`Mutex`]. Releasing it (drop) is a modeled operation.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    raw: Option<StdMutexGuard<'a, ()>>,
    modeled: bool,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: holding the guard means holding the (modeled or raw) lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, with exclusive access through &mut self.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.modeled {
            // `current()` is None while unwinding: the run is being
            // abandoned and its state no longer matters.
            if let Some(ctx) = current() {
                ctx.model.op_mutex_unlock(ctx.tid, &self.lock.id);
            }
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Modeled condition variable (parking_lot-shaped API).
pub struct Condvar {
    id: ObjId,
    real: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            id: ObjId::new(),
            real: StdCondvar::new(),
        }
    }

    /// Blocks until notified. Under a model this is a hard block: if every
    /// thread ends up blocked the run fails as a deadlock.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        if guard.modeled {
            if let Some(ctx) = current() {
                ctx.model
                    .op_cv_wait(ctx.tid, &self.id, &guard.lock.id, false);
            }
            return;
        }
        let raw = guard.raw.take().expect("fallback guard missing raw lock");
        let raw = self.real.wait(raw).unwrap_or_else(|e| e.into_inner());
        guard.raw = Some(raw);
    }

    /// Blocks until notified or the timeout elapses. Under a model the
    /// timeout never fires on its own; a timed waiter is only woken early
    /// as a *deadlock rescue* (reported per run, see the crate docs).
    pub fn wait_for<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if guard.modeled {
            if let Some(ctx) = current() {
                let timed_out = ctx
                    .model
                    .op_cv_wait(ctx.tid, &self.id, &guard.lock.id, true);
                return WaitTimeoutResult(timed_out);
            }
            return WaitTimeoutResult(false);
        }
        let raw = guard.raw.take().expect("fallback guard missing raw lock");
        let (raw, res) = self
            .real
            .wait_timeout(raw, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.raw = Some(raw);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter (a modeled decision point when several wait).
    pub fn notify_one(&self) {
        match current() {
            Some(ctx) => ctx.model.op_cv_notify(ctx.tid, &self.id, false),
            None => self.real.notify_one(),
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match current() {
            Some(ctx) => ctx.model.op_cv_notify(ctx.tid, &self.id, true),
            None => self.real.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

// ---------------------------------------------------------------------------
// Arc
// ---------------------------------------------------------------------------

/// Thin wrapper over [`std::sync::Arc`] that adds a schedule point right
/// before the last reference is dropped — the moment that matters for
/// reclamation races. Clones and non-final drops are pass-through.
pub struct Arc<T: ?Sized>(std::sync::Arc<T>);

impl<T> Arc<T> {
    /// Allocates a new reference-counted value.
    pub fn new(v: T) -> Self {
        Arc(std::sync::Arc::new(v))
    }
}

impl<T: ?Sized> Arc<T> {
    /// Pointer identity comparison.
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        std::sync::Arc::ptr_eq(&a.0, &b.0)
    }

    /// Current strong reference count.
    pub fn strong_count(this: &Self) -> usize {
        std::sync::Arc::strong_count(&this.0)
    }
}

impl<T: ?Sized> Clone for Arc<T> {
    fn clone(&self) -> Self {
        Arc(self.0.clone())
    }
}

impl<T: ?Sized> Deref for Arc<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Drop for Arc<T> {
    fn drop(&mut self) {
        if std::sync::Arc::strong_count(&self.0) == 1 {
            if let Some(ctx) = current() {
                ctx.model.op_yield(ctx.tid);
            }
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}
