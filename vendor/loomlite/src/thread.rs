//! Modeled `thread::spawn` / `JoinHandle` / `yield_now`.
//!
//! Under an active model, spawned closures run on real OS threads but are
//! serialized by the model's token-passing scheduler; `join` is a modeled
//! blocking operation (a joiner deadlocking with its target is detected).
//! Outside a model everything delegates to `std::thread`.

use std::sync::{Arc as StdArc, Mutex as StdMutex};

use crate::exec::{current, enter_modeled_thread};

type Slot<T> = StdArc<StdMutex<Option<std::thread::Result<T>>>>;

enum Inner<T> {
    Model {
        model: StdArc<crate::exec::Model>,
        tid: usize,
        slot: Slot<T>,
    },
    Real(std::thread::JoinHandle<T>),
}

/// Handle to a spawned (possibly modeled) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Under a model
    /// this is a schedule point and a modeled blocking operation.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Model { model, tid, slot } => {
                let me = current()
                    .expect("modeled JoinHandle joined outside its model")
                    .tid;
                model.op_join(me, tid);
                slot.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined thread left no result")
            }
            Inner::Real(h) => h.join(),
        }
    }
}

/// Spawns a thread. Inside a model the new thread is registered with the
/// scheduler and only runs when the explorer schedules it.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some(ctx) => {
            let tid = ctx.model.register_thread();
            let slot: Slot<T> = StdArc::new(StdMutex::new(None));
            let slot2 = slot.clone();
            let model = ctx.model.clone();
            let model2 = model.clone();
            let h = std::thread::Builder::new()
                .name(format!("loomlite-t{tid}"))
                .spawn(move || {
                    enter_modeled_thread(model2, tid, move || {
                        let v = f();
                        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                    });
                })
                .expect("failed to spawn modeled thread");
            model.adopt_os_handle(h);
            JoinHandle {
                inner: Inner::Model { model, tid, slot },
            }
        }
        None => JoinHandle {
            inner: Inner::Real(std::thread::spawn(f)),
        },
    }
}

/// A pure schedule point under a model; `std::thread::yield_now` otherwise.
pub fn yield_now() {
    match current() {
        Some(ctx) => ctx.model.op_yield(ctx.tid),
        None => std::thread::yield_now(),
    }
}
