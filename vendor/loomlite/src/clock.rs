//! Vector clocks: the happens-before backbone of the memory model.

/// A vector clock over modeled thread ids. Component `t` counts the
/// store-events thread `t` has performed; `joined` clocks propagate
/// visibility along synchronizes-with edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn new() -> Self {
        VClock(Vec::new())
    }

    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn grow(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
    }

    /// Increments this thread's own component and returns the new stamp.
    pub(crate) fn incr(&mut self, tid: usize) -> u32 {
        self.grow(tid);
        self.0[tid] += 1;
        self.0[tid]
    }

    /// Component-wise maximum.
    pub(crate) fn join(&mut self, other: &VClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::VClock;

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VClock::new();
        a.incr(0);
        a.incr(0);
        let mut b = VClock::new();
        b.incr(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        assert_eq!(a.get(2), 0);
    }

    #[test]
    fn incr_returns_new_stamp() {
        let mut c = VClock::new();
        assert_eq!(c.incr(3), 1);
        assert_eq!(c.incr(3), 2);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }
}
