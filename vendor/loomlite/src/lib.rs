//! # loomlite
//!
//! A vendored, dependency-free, loom-style **deterministic concurrency model
//! checker**. It runs a closure-under-test many times, each time forcing a
//! different interleaving of the modeled threads, and — unlike a plain
//! interleaving explorer — it also models **weak memory**: every modeled
//! atomic location keeps its full modification order, and a `Relaxed` load is
//! allowed to return *any* store that is not yet obsolete for the loading
//! thread (per a vector-clock happens-before relation). `Acquire`/`Release`
//! edges and `SeqCst` fences narrow that choice exactly as C11 does, so
//! missing-ordering bugs surface as extra value choices, not just as rare
//! interleavings.
//!
//! ## Exploration strategy
//!
//! * **Exhaustive DFS** over the schedule-decision tree, bounded by a
//!   *preemption bound* (default 2): schedules that preempt a runnable thread
//!   more than `bound` times are pruned. For the small models we ship
//!   (2–3 threads, 2–4 ops each) this is exhaustive in practice.
//! * **Seeded random (PCT-style)**: when the bounded tree was pruned or the
//!   schedule cap was hit, an additional `random_schedules` runs are made with
//!   per-run thread priorities and `pct_depth` priority-change points derived
//!   from a reproducible seed.
//!
//! ## Failure handling
//!
//! The first failing schedule (assertion panic, deadlock, lost wakeup, step
//! budget blowout) is **shrunk** — decision choices are greedily reset to
//! their defaults while the failure persists — then replayed once more with
//! tracing enabled, and the resulting event trace is printed before the test
//! panics. Every run is deterministic given its decision path, so the printed
//! schedule string reproduces the failure exactly.
//!
//! ## Usage
//!
//! ```
//! use loomlite::sync::atomic::{AtomicUsize, Ordering};
//! use loomlite::sync::Arc;
//!
//! let report = loomlite::model(|| {
//!     let a = Arc::new(AtomicUsize::new(0));
//!     let b = a.clone();
//!     let t = loomlite::thread::spawn(move || {
//!         b.fetch_add(1, Ordering::SeqCst);
//!     });
//!     a.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(a.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.complete);
//! ```
//!
//! ## Fallback mode
//!
//! Every loomlite primitive wraps the *real* `std` primitive and delegates to
//! it whenever no model is active on the current thread. Code compiled
//! against `loomlite::sync` therefore still behaves correctly (just with
//! modeled types) under the normal test suite — enabling a `model-check`
//! feature never breaks ordinary tests.
//!
//! ## Caveats (by design — this is a bounded checker, not a proof)
//!
//! * Only `u64`-shaped atomics (`AtomicBool`/`AtomicUsize`/`AtomicU64`/
//!   `AtomicPtr`) are modeled; wider state must be decomposed.
//! * Modeled objects must be **created inside the checked closure** so each
//!   run starts from a fresh state.
//! * `Condvar::wait_for` is modeled as a hard block that is eligible for
//!   *timeout rescue*: when every thread is blocked and at least one of them
//!   is in a timed wait, one timed waiter is woken (a `Rescue` decision). The
//!   per-run rescue count is reported, and `Builder::fail_on_timeout_rescue`
//!   turns any rescue into a failure — that is how the WAL ring model proves
//!   its Dekker-style parked/ready protocol never loses a wakeup.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod clock;
mod exec;
pub mod sync;
pub mod thread;

pub use exec::{model, Builder, Failure, Report};
