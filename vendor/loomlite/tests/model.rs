//! loomlite self-tests: scheduler determinism, exhaustive schedule counts,
//! weak-memory litmus tests (the deliberately seeded ordering bugs), trace
//! shrinking, deadlock detection, and lost-wakeup detection.

use std::time::Duration;

use loomlite::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use loomlite::sync::{Arc, Condvar, Mutex};
use loomlite::{thread, Builder};

fn quiet_builder() -> Builder {
    let mut b = Builder::new();
    b.seed = 0xfeed_beef; // decouple self-tests from LOOMLITE_SEED
    b
}

#[test]
fn two_seqcst_increments_always_sum() {
    let report = quiet_builder()
        .check_quiet(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = a.clone();
            let t = thread::spawn(move || {
                b.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        })
        .expect("model should pass");
    assert!(report.complete, "small model must explore to completion");
    assert!(report.schedules() >= 2, "must explore both orders");
}

#[test]
fn exhaustive_schedule_count_is_deterministic() {
    let run = || {
        let mut b = quiet_builder();
        b.preemption_bound = None; // fully exhaustive
        b.check_quiet(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.store(1, Ordering::SeqCst);
            });
            let _ = y.load(Ordering::SeqCst);
            let _ = x.load(Ordering::SeqCst);
            t.join().unwrap();
        })
        .expect("model should pass")
    };
    let a = run();
    let b = run();
    assert!(a.complete && b.complete);
    assert_eq!(a.exhaustive_schedules, b.exhaustive_schedules);
    assert_eq!(a.random_schedules, b.random_schedules);
    assert_eq!(a.max_depth, b.max_depth);
    assert!(
        a.exhaustive_schedules >= 6,
        "a 2-thread 2x2-op interleaving space has at least C(4,2)=6 schedules, got {}",
        a.exhaustive_schedules
    );
}

#[test]
fn store_buffering_relaxed_is_exposed() {
    // Classic SB litmus: both threads store their flag then read the other's
    // with Relaxed. The (0, 0) outcome is impossible under sequential
    // consistency but allowed by Relaxed — a pure interleaving explorer
    // cannot find it; the value-visibility model must.
    let failure = quiet_builder()
        .check_quiet(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            let r0 = x.load(Ordering::Relaxed);
            let r1 = t.join().unwrap();
            assert!(
                !(r0 == 0 && r1 == 0),
                "store buffering observed: r0 == r1 == 0"
            );
        })
        .expect_err("Relaxed store buffering must be caught");
    assert!(failure.message.contains("store buffering observed"));
    assert!(!failure.trace.is_empty(), "failure must carry a trace");
}

#[test]
fn store_buffering_seqcst_is_forbidden() {
    let report = quiet_builder()
        .check_quiet(|| {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            let r0 = x.load(Ordering::SeqCst);
            let r1 = t.join().unwrap();
            assert!(!(r0 == 0 && r1 == 0), "SeqCst must forbid (0, 0)");
        })
        .expect("SeqCst store buffering is impossible");
    assert!(report.complete);
}

#[test]
fn message_passing_relaxed_bug_is_caught_with_trace() {
    // The deliberately seeded ordering bug: publishing data behind a Relaxed
    // flag. An Acquire/Release pair is required; Relaxed lets the reader see
    // the flag without the data.
    let failure = quiet_builder()
        .check_quiet(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed); // BUG: should be Release
            });
            if flag.load(Ordering::Relaxed) == 1 {
                // BUG: should be Acquire above
                assert_eq!(data.load(Ordering::Relaxed), 42, "saw flag without data");
            }
            t.join().unwrap();
        })
        .expect_err("Relaxed message passing must be caught");
    // The acceptance criterion: the seeded bug is caught *with a printed
    // failing trace*. Print it (visible with --nocapture / on failure) and
    // check its shape.
    eprintln!("{failure}");
    assert!(failure.message.contains("saw flag without data"));
    assert!(failure.trace.contains("load"), "trace shows the loads");
    assert!(failure.trace.contains("store"), "trace shows the stores");
    assert!(!failure.schedule.is_empty(), "schedule string reproduces it");
}

#[test]
fn message_passing_release_acquire_passes() {
    let report = quiet_builder()
        .check_quiet(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        })
        .expect("Release/Acquire message passing is correct");
    assert!(report.complete);
}

#[test]
fn trace_shrinking_produces_a_small_counterexample() {
    // Lost-update bug: two unsynchronized load-then-store increments. The
    // shrunk counterexample should be tiny even though the search may find
    // the failure on a longer schedule first.
    let failure = quiet_builder()
        .check_quiet(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = x.clone();
            let t = thread::spawn(move || {
                let v = x2.load(Ordering::SeqCst);
                x2.store(v + 1, Ordering::SeqCst);
            });
            let v = x.load(Ordering::SeqCst);
            x.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(x.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("lost update must be found");
    assert!(failure.message.contains("lost update"));
    let lines = failure.trace.lines().count();
    assert!(
        lines <= 25,
        "shrunk trace should be small, got {lines} lines:\n{}",
        failure.trace
    );
}

#[test]
fn seeded_random_phase_is_deterministic() {
    // Preemption bound 0 prunes aggressively, forcing the PCT random phase;
    // the same seed must reproduce the exact same exploration.
    let run = |seed: u64| {
        let mut b = quiet_builder();
        b.preemption_bound = Some(0);
        b.random_schedules = 64;
        b.seed = seed;
        b.check_quiet(|| {
            let x = Arc::new(AtomicU64::new(0));
            let (a, b2) = (x.clone(), x.clone());
            let t1 = thread::spawn(move || {
                a.fetch_add(1, Ordering::SeqCst);
            });
            let t2 = thread::spawn(move || {
                b2.fetch_add(2, Ordering::SeqCst);
            });
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(x.load(Ordering::SeqCst), 3);
        })
        .expect("model should pass")
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.exhaustive_schedules, b.exhaustive_schedules);
    assert_eq!(a.random_schedules, b.random_schedules);
    assert_eq!(a.preemption_pruned, b.preemption_pruned);
    assert_eq!(a.max_depth, b.max_depth);
    assert!(a.random_schedules == 64, "random phase must run when pruned");
}

#[test]
fn mutex_serializes_increments() {
    let report = quiet_builder()
        .check_quiet(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = m.clone();
            let t = thread::spawn(move || {
                let mut g = m2.lock();
                *g += 1;
            });
            {
                let mut g = m.lock();
                *g += 1;
            }
            t.join().unwrap();
            assert_eq!(*m.lock(), 2);
        })
        .expect("mutex counter is race-free");
    assert!(report.complete);
}

#[test]
fn abba_deadlock_is_detected() {
    let failure = quiet_builder()
        .check_quiet(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            let _ga = a.lock();
            let _gb = b.lock();
            drop(_gb);
            drop(_ga);
            t.join().unwrap();
        })
        .expect_err("ABBA deadlock must be detected");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn condvar_handoff_completes() {
    let report = quiet_builder()
        .check_quiet(|| {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (m.clone(), cv.clone());
            let t = thread::spawn(move || {
                let mut g = m2.lock();
                *g = true;
                drop(g);
                cv2.notify_one();
            });
            {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            }
            t.join().unwrap();
        })
        .expect("notify always arrives");
    assert!(report.complete);
}

#[test]
fn lost_wakeup_is_caught_by_rescue_accounting() {
    // The setter flips the flag but never notifies: only the wait_for
    // timeout can save the waiter. With fail_on_timeout_rescue the checker
    // turns that reliance into a failure.
    let mut b = quiet_builder();
    b.fail_on_timeout_rescue = true;
    let failure = b
        .check_quiet(|| {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let m2 = m.clone();
            let t = thread::spawn(move || {
                let mut g = m2.lock();
                *g = true;
                // BUG: missing cv.notify_one()
            });
            {
                let mut g = m.lock();
                while !*g {
                    cv.wait_for(&mut g, Duration::from_millis(10));
                }
            }
            t.join().unwrap();
        })
        .expect_err("missing notify must be caught");
    assert!(
        failure.message.contains("rescue"),
        "unexpected failure: {}",
        failure.message
    );

    // And the correct protocol never needs the timeout.
    let mut b = quiet_builder();
    b.fail_on_timeout_rescue = true;
    let report = b
        .check_quiet(|| {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (m.clone(), cv.clone());
            let t = thread::spawn(move || {
                let mut g = m2.lock();
                *g = true;
                drop(g);
                cv2.notify_one();
            });
            {
                let mut g = m.lock();
                while !*g {
                    cv.wait_for(&mut g, Duration::from_millis(10));
                }
            }
            t.join().unwrap();
        })
        .expect("correct protocol needs no rescue");
    assert_eq!(report.timeout_rescues, 0);
}

#[test]
fn fallback_mode_runs_without_a_model() {
    // Outside Builder::check the same types must behave like the real ones.
    let x = Arc::new(AtomicU64::new(0));
    let m = Arc::new(Mutex::new(1u64));
    let x2 = x.clone();
    let m2 = m.clone();
    let t = thread::spawn(move || {
        x2.fetch_add(41, Ordering::SeqCst);
        *m2.lock() += 1;
    });
    t.join().unwrap();
    assert_eq!(x.load(Ordering::SeqCst) + 1, 42);
    assert_eq!(*m.lock(), 2);
}
