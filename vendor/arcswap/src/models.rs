//! Bounded loomlite models of the reclamation protocol.
//!
//! Two layers:
//!
//! - **Real-code models** drive the shipped [`ArcSwap`](crate::ArcSwap)
//!   itself (whose atomics resolve to loomlite under this feature) and
//!   assert the user-visible invariants: a guard never observes a torn or
//!   reclaimed value, and no displaced value is stranded on the spill list
//!   once the last reader departs.
//!
//! - **Transcribed models** restate the two load-bearing handshakes with
//!   bare modeled atomics so their memory orderings can be *weakened on
//!   purpose*; the accompanying tests assert the checker catches the
//!   resulting use-after-free / stranded-spill, which is the evidence that
//!   the `SeqCst` annotations in `lib.rs` are load-bearing and not cargo
//!   culting (see the `// ordering:` comments there).
//!
//! Every function returns the checker's [`Report`] so callers (the crate's
//! `tests/model.rs` and the workspace-level `tests/model_check.rs`) can
//! assert exhaustiveness and schedule counts.

use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicUsize as StdAtomicUsize};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc as StdArc;

use loomlite::sync::atomic::{AtomicUsize, Ordering};
use loomlite::{Builder, Failure, Report};

use crate::ArcSwap;

/// Default builder: bounded-exhaustive (preemption bound 2) plus the seeded
/// random phase — right for the real-code model, which has tens of schedule
/// points per run.
fn builder() -> Builder {
    Builder::default()
}

/// Unbounded builder for the transcribed handshakes: few enough operations
/// that the full schedule tree is explored (`report.complete`).
fn unbounded() -> Builder {
    Builder {
        preemption_bound: None,
        ..Builder::default()
    }
}

/// Counts live instances so the models can prove every displaced value is
/// dropped exactly once, never early, and never stranded.
struct Tracked {
    value: u64,
    live: StdArc<StdAtomicUsize>,
}

impl Tracked {
    fn new(value: u64, live: &StdArc<StdAtomicUsize>) -> Self {
        live.fetch_add(1, Relaxed);
        Tracked {
            value,
            live: StdArc::clone(live),
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Relaxed);
    }
}

/// Real-code model: one reader (`load` + deref + guard drop) races a writer
/// publishing twice via the pointer CAS. Asserts on every interleaving that
/// the guard observes one of the published values and that, after both
/// threads finish, exactly the current value is still live — an early free
/// or a value stranded on the spill list both break the count.
pub fn cas_vs_guard_reclamation() -> Report {
    builder().check(|| {
        let live: StdArc<StdAtomicUsize> = StdArc::new(StdAtomicUsize::new(0));
        let cell = StdArc::new(ArcSwap::new(StdArc::new(Tracked::new(0, &live))));

        let reader = {
            let cell = StdArc::clone(&cell);
            loomlite::thread::spawn(move || {
                let guard = cell.load();
                let seen = guard.value;
                assert!(seen <= 2, "guard saw unpublished value {seen}");
                drop(guard);
                seen
            })
        };

        let writer = {
            let cell = StdArc::clone(&cell);
            let live = StdArc::clone(&live);
            loomlite::thread::spawn(move || {
                for next in 1..=2u64 {
                    let current = cell.load_full();
                    assert_eq!(current.value, next - 1);
                    assert!(cell.compare_and_swap(&current, StdArc::new(Tracked::new(next, &live))));
                }
            })
        };

        let seen = reader.join().unwrap();
        writer.join().unwrap();
        assert!(seen <= 2);
        // Everything displaced must have been reclaimed by now: only the
        // cell's current value (2) may remain live. A stranded spill entry
        // shows up here as live == 2.
        assert_eq!(
            live.load(Relaxed),
            1,
            "displaced value leaked past the last reader"
        );
        drop(cell);
        assert_eq!(live.load(Relaxed), 0, "cell drop leaked its value");
    })
}

/// Transcription of the load/reclaim handshake (crate docs, steps 1–2)
/// with parameterizable reader-side orderings.
///
/// Locations: `readers` (the counter) and `ptr` (0 = old value, 1 = new).
/// The writer publishes 1, then frees value 0 if it observes `readers == 0`.
/// The reader counts itself in, reads `ptr`, and — if it obtained the old
/// value — asserts the writer has not freed it. `freed` is a plain
/// (non-modeled) flag: modeled operations serialize under the scheduler
/// token, so it records the ground-truth interleaving order.
///
/// With `weaken_reader = false` both reader operations are `SeqCst` and the
/// protocol is safe. With `true` the reader's increment is `Relaxed` and its
/// pointer read `Acquire` — the increment can then be invisible to the
/// writer's (still-`SeqCst`) zero check *while* the pointer read still
/// returns the stale old value, and the checker reports the use-after-free.
pub fn transcribed_load_vs_free(weaken_reader: bool) -> Result<Report, Failure> {
    let (inc_order, ptr_order) = if weaken_reader {
        (Ordering::Relaxed, Ordering::Acquire)
    } else {
        (Ordering::SeqCst, Ordering::SeqCst)
    };
    unbounded().check_quiet(move || {
        let readers = StdArc::new(AtomicUsize::new(0));
        let ptr = StdArc::new(AtomicUsize::new(0));
        let freed = StdArc::new(StdAtomicBool::new(false));

        let reader = {
            let (readers, ptr, freed) =
                (StdArc::clone(&readers), StdArc::clone(&ptr), StdArc::clone(&freed));
            loomlite::thread::spawn(move || {
                readers.fetch_add(1, inc_order);
                let p = ptr.load(ptr_order);
                if p == 0 {
                    // Dereference of the old value: it must not be freed yet.
                    assert!(!freed.load(Relaxed), "UAF: reader saw freed value 0");
                }
                readers.fetch_sub(1, Ordering::SeqCst);
            })
        };

        let writer = {
            let (readers, ptr, freed) =
                (StdArc::clone(&readers), StdArc::clone(&ptr), StdArc::clone(&freed));
            loomlite::thread::spawn(move || {
                ptr.store(1, Ordering::SeqCst);
                if readers.load(Ordering::SeqCst) == 0 {
                    // No counted reader: value 0 is reclaimed immediately.
                    freed.store(true, Relaxed);
                }
            })
        };

        reader.join().unwrap();
        writer.join().unwrap();
    })
}

/// Transcription of the spill/drain handshake (`defer_drop` vs
/// `Guard::drop`): the writer parks a displaced value (`spilled = 1`) and
/// re-checks the reader count; the departing reader decrements and checks
/// `spilled`. Exactly one of them must drain — with `seqcst = false` both
/// checks are `Relaxed`, both sides can miss each other (store buffering),
/// and the checker reports the stranded spill entry.
pub fn transcribed_spill_handshake(seqcst: bool) -> Result<Report, Failure> {
    let order = if seqcst {
        Ordering::SeqCst
    } else {
        Ordering::Relaxed
    };
    unbounded().check_quiet(move || {
        let readers = StdArc::new(AtomicUsize::new(1)); // one reader already in
        let spilled = StdArc::new(AtomicUsize::new(0));
        let drained = StdArc::new(StdAtomicBool::new(false));

        let writer = {
            let (readers, spilled, drained) = (
                StdArc::clone(&readers),
                StdArc::clone(&spilled),
                StdArc::clone(&drained),
            );
            loomlite::thread::spawn(move || {
                // The displaced value was already parked; publish the hint
                // then re-check for a reader that departed in between.
                spilled.store(1, order);
                if readers.load(order) == 0 {
                    drained.store(true, Relaxed);
                }
            })
        };

        let reader = {
            let (readers, spilled, drained) = (
                StdArc::clone(&readers),
                StdArc::clone(&spilled),
                StdArc::clone(&drained),
            );
            loomlite::thread::spawn(move || {
                if readers.fetch_sub(1, order) == 1 && spilled.load(order) != 0 {
                    drained.store(true, Relaxed);
                }
            })
        };

        writer.join().unwrap();
        reader.join().unwrap();
        assert!(
            drained.load(Relaxed),
            "stranded spill: neither the writer's re-check nor the departing reader drained"
        );
    })
}
