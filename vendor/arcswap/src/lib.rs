//! Vendored `arc-swap`-style atomic `Arc<T>` cell.
//!
//! The workspace's STM core (`stm-core`) is `forbid(unsafe_code)`; this
//! crate is the one place the locator-publication hot path is allowed to
//! touch raw pointers. It provides [`ArcSwap`]: a cell holding an `Arc<T>`
//! whose readers never block and whose writers publish with a single
//! pointer compare-exchange — the shape DSTM's object acquisition needs
//! (the paper's locator swap is exactly one CAS).
//!
//! ## Reclamation protocol
//!
//! `Arc` alone cannot make "load the pointer, then bump the refcount"
//! atomic, so a displaced value must not be dropped while a reader sits
//! between those two steps. Reclamation is deferred with a per-cell reader
//! counter instead of a global epoch domain (`stm_core::EpochGc` exists,
//! but its `retire` path takes two mutexes per call and its pins are
//! transaction-scoped, while `ArcSwap` loads must also be safe *outside*
//! any transaction — e.g. committed-value peeks from the serving layer):
//!
//! 1. A load increments `readers`, then reads the pointer ([`Guard`]
//!    borrows the value; dropping it decrements `readers`).
//! 2. A successful swap takes ownership of the displaced `Arc`. If
//!    `readers == 0` is observed *after* the pointer write, every counted
//!    reader finished before the swap (SeqCst total order: a reader that
//!    obtained the old pointer incremented the counter before our swap and
//!    has not yet decremented), so the displaced `Arc` drops immediately.
//!    Otherwise it is pushed to a mutex-guarded spill list.
//! 3. The spill list drains when the reader count crosses back to zero
//!    (last `Guard` out) — and opportunistically after a push that races a
//!    departing reader. Spilled values are never the cell's current value,
//!    so late-arriving readers cannot re-observe them; draining at an
//!    observed zero is therefore safe.
//!
//! The spill mutex is only touched by writers that actually displaced a
//! value while a reader was in flight, and by the last reader of a
//! contended window — never by the uncontended load or CAS fast paths.
//!
//! All atomics use `SeqCst`: the protocol's safety argument is stated in
//! terms of the single total order, and the hot path is dominated by the
//! RMW operations whose cost `SeqCst` does not change.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

#[cfg(feature = "model-check")]
pub mod models;
mod sync;

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use crate::sync::Mutex;

/// An atomic cell holding an `Arc<T>`: lock-free loads, pointer-CAS
/// publication, counter-deferred reclamation (see the crate docs).
pub struct ArcSwap<T> {
    ptr: AtomicPtr<T>,
    readers: AtomicUsize,
    /// Number of entries in `spill`. Kept outside the mutex so the load
    /// fast path (the common zero-crossing in `Guard::drop`) can skip the
    /// lock entirely with one plain load — on most loads nothing was ever
    /// spilled.
    spilled: AtomicUsize,
    spill: Mutex<Vec<Arc<T>>>,
}

/// A borrowed view of an [`ArcSwap`]'s value at load time.
///
/// Holding the guard keeps the cell's reader count elevated, which is what
/// keeps the pointed-to value alive even if a writer displaces it. Not
/// `Send`: the count is released on the loading thread.
pub struct Guard<'a, T> {
    cell: &'a ArcSwap<T>,
    ptr: *const T,
}

impl<T> ArcSwap<T> {
    /// Creates a cell holding `value`.
    #[must_use]
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            readers: AtomicUsize::new(0),
            spilled: AtomicUsize::new(0),
            spill: Mutex::new(Vec::new()),
        }
    }

    /// Creates a cell holding a fresh `Arc` around `value`.
    #[must_use]
    pub fn from_value(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Loads the current value without cloning the `Arc`. The borrow is
    /// valid for the guard's lifetime even if a writer displaces the value
    /// concurrently.
    pub fn load(&self) -> Guard<'_, T> {
        // ordering: the increment is visible before this load in the SeqCst
        // total order, so any writer that later displaces `ptr` sees
        // readers > 0 and spills instead of dropping. The pointer load
        // itself must also be SeqCst: a weaker load may read a pointer the
        // writer already displaced *and* dropped after observing zero
        // readers (proven by `models::transcribed_load_vs_free`).
        self.readers.fetch_add(1, SeqCst);
        let ptr = self.ptr.load(SeqCst);
        Guard { cell: self, ptr }
    }

    /// Loads the current value as an owned `Arc`.
    #[must_use]
    pub fn load_full(&self) -> Arc<T> {
        self.load().to_arc()
    }

    /// Publishes `new` iff the cell still holds exactly `expected` (same
    /// allocation, pointer identity). Returns whether the swap happened.
    /// The success path is one `compare_exchange`; no lock is taken unless
    /// a displaced value must be spilled past an in-flight reader.
    pub fn compare_and_swap(&self, expected: &Arc<T>, new: Arc<T>) -> bool {
        let new_raw = Arc::into_raw(new).cast_mut();
        // ordering: the publication CAS anchors the reclamation argument's
        // total order — `defer_drop`'s readers check below must come after
        // it, and reader increments land on one side or the other.
        match self
            .ptr
            .compare_exchange(Arc::as_ptr(expected).cast_mut(), new_raw, SeqCst, SeqCst)
        {
            Ok(old_raw) => {
                // The cell owned one strong count on the displaced value;
                // reconstitute and retire it.
                let old = unsafe { Arc::from_raw(old_raw) };
                self.defer_drop(old);
                true
            }
            Err(_) => {
                // Publication lost: reclaim the strong count `into_raw`
                // leaked and report failure.
                drop(unsafe { Arc::from_raw(new_raw) });
                false
            }
        }
    }

    /// Unconditionally replaces the value.
    pub fn store(&self, new: Arc<T>) {
        let new_raw = Arc::into_raw(new).cast_mut();
        // ordering: same role as the CAS in `compare_and_swap`.
        let old_raw = self.ptr.swap(new_raw, SeqCst);
        let old = unsafe { Arc::from_raw(old_raw) };
        self.defer_drop(old);
    }

    /// Retires a displaced value: drops it immediately when no reader is
    /// in flight, otherwise parks it on the spill list until the reader
    /// count next crosses zero.
    fn defer_drop(&self, old: Arc<T>) {
        // ordering: this zero check must come after the pointer swap in the
        // SeqCst total order — a reader counted before the swap has not yet
        // decremented, so observing zero here proves no reader can hold the
        // displaced pointer (see the crate docs, step 2).
        if self.readers.load(SeqCst) == 0 {
            return;
        }
        {
            let mut spill = self.spill.lock();
            spill.push(old);
            // ordering: the `spilled` store and the reader's decrement form
            // a store-buffering pair with the re-check below / the reader's
            // `spilled` load; SeqCst guarantees at least one side notices
            // and drains, so no spilled entry is ever stranded.
            self.spilled.store(spill.len(), SeqCst);
        }
        // The counted reader may have departed between our count read and
        // the push. If it decremented before our `spilled` store became
        // visible to it, its drop skipped the drain — this re-check (SeqCst,
        // after the store) sees its departure and drains on its behalf;
        // otherwise the reader sees `spilled > 0` and drains itself.
        // ordering: see the store-buffering note above.
        if self.readers.load(SeqCst) == 0 {
            self.drain_spill();
        }
    }

    fn drain_spill(&self) {
        // Safety of dropping here: entries were displaced before they were
        // spilled, so only readers already counted at spill time can hold
        // their pointers — and an observed zero count means all of those
        // have departed. New readers only ever observe the current value.
        let drained: Vec<Arc<T>> = {
            let mut spill = self.spill.lock();
            // ordering: reset under the spill lock; SeqCst keeps the reset
            // ordered against concurrent readers' `spilled` checks so a
            // racing spill is re-flagged, not lost.
            self.spilled.store(0, SeqCst);
            std::mem::take(&mut *spill)
        };
        drop(drained);
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // Reclaim the strong count the cell holds on its current value;
        // the spill list drops with the struct.
        let raw = *self.ptr.get_mut();
        drop(unsafe { Arc::from_raw(raw) });
    }
}

// Field-wise auto impls would already grant these (AtomicPtr is Send+Sync
// for any T), but the cell semantically owns and hands out `Arc<T>`s, so
// spell the bounds out the way `Arc` itself does.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T: fmt::Debug> fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArcSwap").field("value", &*self.load()).finish()
    }
}

impl<T> Guard<'_, T> {
    /// Clones the guarded value into an owned `Arc`.
    #[must_use]
    pub fn to_arc(&self) -> Arc<T> {
        // The guard's elevated reader count keeps the allocation alive, so
        // the strong count is ≥ 1 for the whole bump.
        unsafe {
            Arc::increment_strong_count(self.ptr);
            Arc::from_raw(self.ptr)
        }
    }

    /// Whether this guard views the same allocation as `other`.
    #[must_use]
    pub fn ptr_eq(&self, other: &Arc<T>) -> bool {
        std::ptr::eq(self.ptr, Arc::as_ptr(other))
    }
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Valid for the guard's lifetime: the reader count was raised
        // before the pointer was read, so writers spill rather than drop.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        // ordering: the decrement and the `spilled` load are the reader's
        // half of the store-buffering pair documented in `defer_drop`; both
        // must be SeqCst or a spilled entry can be stranded past this
        // zero-crossing (proven by `models::transcribed_spill_handshake`).
        if self.cell.readers.fetch_sub(1, SeqCst) == 1
            && self.cell.spilled.load(SeqCst) != 0
        {
            // Last reader out of a contended window: anything spilled while
            // we (or our peers) were in flight is now unreachable. The
            // `spilled` check keeps the common case — nothing was displaced
            // past us — off the mutex entirely; a spill racing our
            // decrement is drained by the writer's own re-check.
            self.cell.drain_spill();
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Guard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::thread;

    /// Counts live instances so the tests can prove every displaced value
    /// is dropped exactly once and never early.
    struct Tracked {
        value: u64,
        live: &'static AtomicUsize,
    }

    impl Tracked {
        fn new(value: u64, live: &'static AtomicUsize) -> Self {
            live.fetch_add(1, SeqCst);
            Tracked { value, live }
        }
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.live.fetch_sub(1, SeqCst);
        }
    }

    fn leak_counter() -> &'static AtomicUsize {
        Box::leak(Box::new(AtomicUsize::new(0)))
    }

    #[test]
    fn load_sees_stores() {
        let cell = ArcSwap::from_value(1u64);
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        assert_eq!(*cell.load_full(), 2);
    }

    #[test]
    fn compare_and_swap_is_pointer_conditional() {
        let cell = ArcSwap::from_value(10u64);
        let current = cell.load_full();
        let stale = Arc::new(10u64); // equal value, different allocation
        assert!(!cell.compare_and_swap(&stale, Arc::new(11)));
        assert_eq!(*cell.load(), 10);
        assert!(cell.compare_and_swap(&current, Arc::new(12)));
        assert_eq!(*cell.load(), 12);
        // The displaced Arc survives in the caller's hand.
        assert_eq!(*current, 10);
    }

    #[test]
    fn guard_outlives_concurrent_displacement() {
        let live = leak_counter();
        let cell = ArcSwap::new(Arc::new(Tracked::new(1, live)));
        let guard = cell.load();
        cell.store(Arc::new(Tracked::new(2, live)));
        // The displaced value must still be readable through the guard.
        assert_eq!(guard.value, 1);
        assert_eq!(live.load(SeqCst), 2, "old value spilled, not dropped");
        drop(guard);
        assert_eq!(live.load(SeqCst), 1, "zero-crossing drained the spill");
        drop(cell);
        assert_eq!(live.load(SeqCst), 0);
    }

    #[test]
    fn to_arc_keeps_value_after_cell_drops() {
        let cell = ArcSwap::from_value(String::from("alive"));
        let arc = cell.load().to_arc();
        drop(cell);
        assert_eq!(*arc, "alive");
    }

    #[test]
    fn nested_guards_drain_only_at_outermost_drop() {
        let live = leak_counter();
        let cell = ArcSwap::new(Arc::new(Tracked::new(1, live)));
        let g1 = cell.load();
        let g2 = cell.load();
        cell.store(Arc::new(Tracked::new(2, live)));
        drop(g1);
        assert_eq!(live.load(SeqCst), 2, "inner reader still pins the spill");
        drop(g2);
        assert_eq!(live.load(SeqCst), 1);
        drop(cell);
        assert_eq!(live.load(SeqCst), 0);
    }

    #[test]
    fn concurrent_cas_loses_exactly_once_per_round() {
        let cell = Arc::new(ArcSwap::from_value(0u64));
        let threads = 4;
        let rounds = 200;
        let barrier = Arc::new(Barrier::new(threads));
        let wins: Vec<u64> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        let mut wins = 0u64;
                        for _ in 0..rounds {
                            barrier.wait();
                            let seen = cell.load_full();
                            if cell.compare_and_swap(&seen, Arc::new(*seen + 1)) {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every round increments at least once (someone's expected pointer
        // was current), and the final value equals the total win count.
        let total: u64 = wins.iter().sum();
        assert!(total >= rounds as u64, "{wins:?}");
        assert_eq!(*cell.load(), total);
    }

    #[test]
    fn reader_writer_stress_never_tears_or_leaks() {
        let live = leak_counter();
        let cell = Arc::new(ArcSwap::new(Arc::new(Tracked::new(0, live))));
        let stop = Arc::new(AtomicUsize::new(0));
        thread::scope(|scope| {
            for _ in 0..3 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while stop.load(SeqCst) == 0 {
                        let guard = cell.load();
                        // Published values are monotone; a torn or
                        // prematurely-freed read would break this.
                        assert!(guard.value >= last, "{} < {last}", guard.value);
                        last = guard.value;
                    }
                });
            }
            let writer_cell = Arc::clone(&cell);
            let writer_stop = Arc::clone(&stop);
            scope.spawn(move || {
                for i in 1..=10_000u64 {
                    let current = writer_cell.load_full();
                    assert!(writer_cell
                        .compare_and_swap(&current, Arc::new(Tracked::new(i, live))));
                }
                writer_stop.store(1, SeqCst);
            });
        });
        assert_eq!(cell.load().value, 10_000);
        drop(cell);
        // Everything displaced plus the final value must be gone: the
        // stress would leak here if spill entries were stranded.
        assert_eq!(live.load(SeqCst), 0);
    }
}
