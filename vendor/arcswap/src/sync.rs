//! Synchronization facade: `std`/`parking_lot` primitives normally,
//! loomlite modeled primitives under `--features model-check` so the
//! reclamation protocol can be driven by the deterministic interleaving
//! checker (see `arcswap::models`).

/// Atomic types plus [`Ordering`].
///
/// [`Ordering`]: std::sync::atomic::Ordering
pub(crate) mod atomic {
    #[cfg(not(feature = "model-check"))]
    pub(crate) use std::sync::atomic::{AtomicPtr, AtomicUsize};

    #[cfg(feature = "model-check")]
    pub(crate) use loomlite::sync::atomic::{AtomicPtr, AtomicUsize};

    pub(crate) use std::sync::atomic::Ordering;
}

#[cfg(not(feature = "model-check"))]
pub(crate) use parking_lot::Mutex;

#[cfg(feature = "model-check")]
pub(crate) use loomlite::sync::Mutex;
