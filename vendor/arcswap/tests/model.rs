//! Bounded model-check suite for the reclamation protocol.
//!
//! Runs only with `--features model-check`; see `src/models.rs` for what
//! each model asserts.

#![cfg(feature = "model-check")]

use arcswap::models;

#[test]
fn cas_vs_guard_reclamation_is_safe() {
    let report = models::cas_vs_guard_reclamation();
    eprintln!("arcswap cas-vs-guard: {report}");
    assert!(
        report.schedules() > 100,
        "too few schedules explored: {report}"
    );
}

#[test]
fn load_vs_free_handshake_is_safe_at_seqcst() {
    let report = models::transcribed_load_vs_free(false).expect("SeqCst protocol must be safe");
    eprintln!("arcswap load-vs-free: {report}");
    assert!(report.complete, "tiny model should be explored completely");
    assert!(report.schedules() > 10, "{report}");
}

#[test]
fn weakened_reader_side_is_caught_as_uaf() {
    let failure = models::transcribed_load_vs_free(true)
        .expect_err("Relaxed reader count + Acquire pointer load must be caught");
    eprintln!("caught as expected:\n{failure}");
    assert!(failure.message.contains("UAF"), "{failure}");
    assert!(!failure.trace.is_empty());
}

#[test]
fn spill_handshake_is_safe_at_seqcst() {
    let report = models::transcribed_spill_handshake(true).expect("SeqCst handshake must drain");
    eprintln!("arcswap spill-handshake: {report}");
    assert!(report.complete, "tiny model should be explored completely");
}

#[test]
fn relaxed_spill_handshake_strands_the_spill() {
    let failure = models::transcribed_spill_handshake(false)
        .expect_err("store-buffering with Relaxed checks must strand the spill");
    eprintln!("caught as expected:\n{failure}");
    assert!(failure.message.contains("stranded spill"), "{failure}");
}
