//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use — `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a plain warm-up + sampled-mean
//! loop over `std::time::Instant`; results print as `ns/iter` lines rather
//! than criterion's HTML reports, which is enough to compare contention
//! managers on the same host.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each bench function by `criterion_group!`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(1),
            default_warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id.to_string(), |b| f(b));
        group.finish();
        self
    }
}

/// Identifies one benchmark within a group as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.full.fmt(f)
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one benchmark, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group. (Reports are printed as benches run.)
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            budget: self.warm_up_time,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let per_sample = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            let mut sample = Bencher {
                budget: per_sample,
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut sample);
            total += sample.elapsed;
            iters += sample.iters;
        }
        if iters > 0 {
            let ns = total.as_nanos() as f64 / iters as f64;
            eprintln!("  {}/{id}: {ns:.1} ns/iter ({iters} iters)", self.name);
        }
    }
}

/// Drives the timed closure; handed to bench bodies as `b`.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly until the sample budget is used up.
    /// Repeated `iter` calls within one bench body accumulate, splitting
    /// the remaining budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let budget = self.budget.saturating_sub(self.elapsed);
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(ran > 0, "bench closure never ran");
    }
}
