//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::SmallRng`], the [`Rng`] and [`SeedableRng`] traits, `gen`,
//! `gen_bool`, and `gen_range` over integer ranges. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic for a given seed,
//! which is all the benchmarks and tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Named random number generators.
pub mod rngs {
    pub use crate::SmallRng;
}

/// A small, fast, deterministic generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SmallRng {
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// Seeding constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator from ambient entropy (wall clock mixed with a
    /// process-global counter, so constructions landing in the same clock
    /// tick — e.g. one manager per thread spawned in a tight loop — still
    /// get distinct streams). Not cryptographic — fine for
    /// contention-manager coin flips.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed_5eed);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::seed_from_u64(nanos ^ unique.rotate_left(32) ^ 0xa076_1d64_78bd_642f)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        SmallRng { s }
    }
}

/// Types producible by [`Rng::gen`] (subset of the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p.clamp(0.0, 1.0)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Distributions beyond the uniform ones (subset of `rand_distr`).
pub mod distributions {
    use super::{RngCore, Standard};

    /// A Zipfian distribution over ranks `0..n`: rank `k` is drawn with
    /// probability proportional to `1 / (k + 1)^s`. This is the standard
    /// hot-key model for KV workloads (YCSB uses `s ≈ 0.99`): rank 0 is
    /// the hottest key, and skew grows with the exponent.
    ///
    /// Sampling is Hörmann's rejection-inversion (the same algorithm the
    /// real `rand_distr::Zipf` uses): invert the integral of the
    /// continuous envelope `x^-s`, then accept/reject against the discrete
    /// mass. Setup is O(1), each sample is O(1) expected with an
    /// acceptance rate near 1 for all practical exponents — no O(n) CDF
    /// table, so huge keyspaces cost nothing.
    #[derive(Debug, Clone)]
    pub struct Zipf {
        n: f64,
        s: f64,
        /// `H(1.5) - 1`: lower end of the inversion range, shifted so the
        /// envelope over `[0.5, 1.5]` has mass exactly 1 (the true mass of
        /// rank 1).
        h_x1: f64,
        /// `H(n + 0.5)`: upper end of the inversion range.
        h_n: f64,
        /// Guaranteed-acceptance threshold: when `k - x <= dist` the
        /// candidate is accepted without evaluating the exact test.
        dist: f64,
    }

    impl Zipf {
        /// A Zipfian over `n` ranks with exponent `s >= 0` (`s == 1` uses
        /// the logarithmic limit; `s == 0` degenerates to uniform).
        ///
        /// # Panics
        ///
        /// When `n == 0` or `s` is negative/non-finite.
        pub fn new(n: u64, s: f64) -> Zipf {
            assert!(n > 0, "Zipf needs at least one rank");
            assert!(
                s.is_finite() && s >= 0.0,
                "Zipf exponent must be finite and >= 0"
            );
            let nf = n as f64;
            let h_x1 = Self::h_integral(s, 1.5) - 1.0;
            let h_n = Self::h_integral(s, nf + 0.5);
            let dist =
                2.0 - Self::h_integral_inverse(s, Self::h_integral(s, 2.5) - Self::h(s, 2.0));
            Zipf { n: nf, s, h_x1, h_n, dist }
        }

        /// The envelope density `h(x) = x^-s`.
        fn h(s: f64, x: f64) -> f64 {
            (-s * x.ln()).exp()
        }

        /// `H(x) = (x^(1-s) - 1) / (1 - s)` (`ln x` as `s -> 1`), computed
        /// as `ln(x) * expm1(t)/t` with `t = (1-s) ln x` so it stays
        /// precise near the singular exponent.
        fn h_integral(s: f64, x: f64) -> f64 {
            let log_x = x.ln();
            let t = (1.0 - s) * log_x;
            let ratio = if t.abs() > 1e-8 {
                t.exp_m1() / t
            } else {
                1.0 + t / 2.0 + t * t / 6.0
            };
            log_x * ratio
        }

        /// `H^-1(y) = (1 + y(1-s))^(1/(1-s))` (`exp(y)` as `s -> 1`),
        /// computed as `exp(y * ln_1p(t)/t)` with `t = y (1-s)`.
        fn h_integral_inverse(s: f64, y: f64) -> f64 {
            // t can dip just below -1 from floating-point error; clamp so
            // ln_1p stays defined.
            let t = (y * (1.0 - s)).max(-1.0);
            let ratio = if t.abs() > 1e-8 {
                t.ln_1p() / t
            } else {
                1.0 - t / 2.0 + t * t / 3.0
            };
            (y * ratio).exp()
        }

        /// Draws one rank in `0..n` (0 = hottest).
        pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            loop {
                // u uniform in (H(1.5) - 1, H(n + 0.5)].
                let u = self.h_n + f64::draw(rng) * (self.h_x1 - self.h_n);
                let x = Self::h_integral_inverse(self.s, u);
                let k = x.round().clamp(1.0, self.n);
                // First clause: guaranteed-acceptance shortcut. Second:
                // the exact rejection test against the discrete mass.
                if k - x <= self.dist
                    || u >= Self::h_integral(self.s, k + 0.5) - Self::h(self.s, k)
                {
                    return k as u64 - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Zipf;
    use super::*;

    #[test]
    fn zipf_samples_stay_in_range_and_hit_every_small_rank() {
        let mut rng = SmallRng::seed_from_u64(7);
        let zipf = Zipf::new(4, 0.99);
        let mut seen = [false; 4];
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!(k < 4, "rank {k} out of range");
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some rank never drawn: {seen:?}");
    }

    #[test]
    fn zipf_top_rank_frequency_matches_theory() {
        // For s = 0.99 over n = 1000 ranks, P(rank 0) = 1 / H_{n,s} where
        // H_{n,s} = sum_{k=1..n} k^-s. Check the empirical top-1 frequency
        // lands within a few percentage points of theory (seeded, so this
        // is deterministic).
        let (n, s) = (1000u64, 0.99f64);
        let harmonic: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let expected = 1.0 / harmonic;
        let zipf = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(12345);
        let draws = 200_000;
        let mut top = 0u64;
        for _ in 0..draws {
            if zipf.sample(&mut rng) == 0 {
                top += 1;
            }
        }
        let observed = top as f64 / draws as f64;
        assert!(
            (observed - expected).abs() < 0.01,
            "top-1 frequency {observed:.4} deviates from theoretical {expected:.4}"
        );
    }

    #[test]
    fn zipf_is_monotone_and_uniform_at_zero_exponent() {
        // Higher ranks must not be more frequent than lower ones (within
        // noise), and s = 0 must look uniform.
        let zipf = Zipf::new(8, 1.2);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0u64; 8];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for w in counts.windows(2) {
            assert!(
                w[0] as f64 >= w[1] as f64 * 0.9,
                "rank frequencies not monotone: {counts:?}"
            );
        }

        let uniform = Zipf::new(8, 0.0);
        let mut counts = [0u64; 8];
        for _ in 0..80_000 {
            counts[uniform.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 1_000.0,
                "s=0 should be uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&y));
            let z = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&z));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn from_entropy_streams_are_distinct_within_one_clock_tick() {
        // Back-to-back constructions can land in the same SystemTime tick;
        // the global counter must still separate their streams.
        let mut rngs: Vec<SmallRng> = (0..8).map(|_| SmallRng::from_entropy()).collect();
        let firsts: std::collections::HashSet<u64> =
            rngs.iter_mut().map(|r| r.next_u64()).collect();
        assert_eq!(firsts.len(), 8, "correlated from_entropy streams");
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&heads), "suspicious coin: {heads}");
    }
}
