//! `stm_kv_demo` — spin up the networked transactional key-value server,
//! drive it with concurrent clients, and audit serializability over the
//! wire.
//!
//! ```sh
//! cargo run --release --example stm_kv_demo
//! ```
//!
//! The demo starts an in-process `stm-kv` server under the greedy manager,
//! seeds 16 "accounts", lets four client connections fire concurrent
//! `BEGIN`/`EXEC` transfer batches at it, and shows that every atomic `SUM`
//! audit — including ones racing the transfers — observes the conserved
//! total.

use std::thread;

use greedy_stm::cm::ManagerKind;
use greedy_stm::kv::{KvClient, KvServer, ServerConfig};

const KEYS: i64 = 16;
const SEED: i64 = 1_000;

fn main() {
    let manager = ManagerKind::Greedy;
    let mut server = KvServer::start(ServerConfig {
        manager,
        capacity: KEYS,
        shards: 4,
        workers: 6,
        ..ServerConfig::default()
    })
    .expect("server must start");
    println!("stm-kv listening on {} under '{}'", server.addr(), manager.name());

    // Seed the accounts over the wire.
    let addr = server.addr();
    let mut seeder = KvClient::connect(addr).unwrap();
    for key in 0..KEYS {
        seeder.put(key, SEED).unwrap();
    }
    let (total, count) = seeder.sum(0, KEYS - 1).unwrap();
    println!("seeded {count} accounts, total balance {total}");
    seeder.quit().unwrap();

    // Four clients hammer the keyspace with atomic transfers while auditing.
    thread::scope(|scope| {
        for c in 0..4i64 {
            scope.spawn(move || {
                let mut client = KvClient::connect(addr).unwrap();
                for i in 0..200i64 {
                    let from = (c * 7 + i) % KEYS;
                    let to = (c * 3 + i * 5 + 1) % KEYS;
                    client.transfer(from, to, 1 + (i % 9)).unwrap();
                    if i % 40 == 0 {
                        let (sum, _) = client.sum(0, KEYS - 1).unwrap();
                        assert_eq!(sum, KEYS * SEED, "client {c} saw a torn total");
                    }
                }
                client.quit().unwrap();
            });
        }
    });

    let mut auditor = KvClient::connect(addr).unwrap();
    let (sum, count) = auditor.sum(0, KEYS - 1).unwrap();
    let stats = auditor.stats().unwrap();
    auditor.quit().unwrap();
    println!("after 800 concurrent transfer batches: total {sum} across {count} keys");
    println!(
        "server stats: commits={} aborts={} batches={} retries={}",
        stats.commits, stats.aborts, stats.batches, stats.retries
    );
    assert_eq!(sum, KEYS * SEED, "balance must be conserved");
    server.shutdown();
    println!("clean shutdown — serializability held over the wire");
}
