//! `stm_kv_typed` — protocol v2 end to end: typed values over binary-safe
//! frames, a fluent atomic batch, and durable recovery of string values
//! across a server restart.
//!
//! ```sh
//! cargo run --release --example stm_kv_typed
//! ```
//!
//! The demo starts a WAL-backed `stm-kv` server, negotiates protocol v2
//! (`HELLO 2`), stores `Int`/`Str`/`Bytes` values — including strings with
//! embedded newlines and NULs, which the v1 line protocol cannot frame —
//! runs an atomic multi-op transaction through the [`BatchBuilder`], shows
//! the typed `TYPE` error `ADD` reports on a string, then restarts the
//! server on the same log directory and proves every typed value came back
//! byte-exact.
//!
//! [`BatchBuilder`]: greedy_stm::kv::BatchBuilder

use greedy_stm::cm::ManagerKind;
use greedy_stm::kv::{ErrorCode, KvClient, KvError, KvServer, Reply, ServerConfig, Value};

fn main() {
    let wal_dir = std::env::temp_dir().join(format!("stm-kv-typed-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let config = ServerConfig {
        manager: ManagerKind::Greedy,
        capacity: 64,
        shards: 4,
        workers: 4,
        wal_dir: Some(wal_dir.clone()),
        ..ServerConfig::default()
    };

    let motto = "binary-safe:\nnewlines, NULs (\0), UTF-8 — ✓ 🦀";
    let blob: Vec<u8> = vec![0x00, 0xFF, 0x0A, 0x0D, 0x00];

    {
        let mut server = KvServer::start(config.clone()).expect("server must start");
        println!("durable stm-kv on {} (wal: {})", server.addr(), wal_dir.display());

        let mut client = KvClient::connect(server.addr()).unwrap();
        println!("negotiated protocol v{}", client.protocol_version());
        assert_eq!(client.protocol_version(), 2);

        // Typed puts: one API, three value kinds.
        client.put(1, 1000).unwrap();
        client.put(2, motto).unwrap();
        client.put(3, blob.clone()).unwrap();
        println!("stored int / str / bytes; str round-trips byte-exact: {:?}",
            client.get_str(2).unwrap().as_deref() == Some(motto));

        // Arithmetic is typed: ADD on a string is a coded TYPE error, not
        // a silent coercion — and the connection survives it.
        match client.add(2, 5).unwrap_err() {
            KvError::Server { code, message } => {
                assert_eq!(code, ErrorCode::Type);
                println!("ADD on a str value → TYPE error: {message}");
            }
            other => panic!("expected a TYPE error, got {other}"),
        }

        // A fluent atomic batch: all ops in one serializable transaction.
        let replies = client
            .batch_builder()
            .add(1, -250)
            .put(4, "created inside the batch")
            .get(1)
            .sum(0, 1)
            .run()
            .unwrap();
        assert_eq!(replies[2], Reply::Value(Value::Int(750)));
        println!("batch of 4 ops executed atomically: balance now {:?}", replies[2]);

        client.quit().unwrap();
        server.shutdown();
        println!("server shut down — typed history lives in the WAL");
    }

    // Restart on the same directory: the typed keyspace must recover.
    let mut server = KvServer::start(config).expect("server must restart");
    let mut client = KvClient::connect(server.addr()).unwrap();
    assert_eq!(client.get_int(1).unwrap(), Some(750));
    assert_eq!(client.get_str(2).unwrap().as_deref(), Some(motto));
    assert_eq!(client.get_bytes(3).unwrap(), Some(blob));
    assert_eq!(
        client.get_str(4).unwrap().as_deref(),
        Some("created inside the batch")
    );
    println!("after restart: int, str (newlines/NULs intact), bytes and batch write all recovered");
    client.quit().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
    println!("typed values survived the crash-recovery loop — protocol v2 end to end");
}
