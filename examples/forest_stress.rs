//! The red-black forest workload (Figure 4): transactions of wildly varying
//! length — most touch one tree, a few touch all fifty — which is exactly
//! where short transactions can starve long ones under naive contention
//! management. Prints per-manager throughput *and* how the long (all-tree)
//! transactions fared.
//!
//! ```sh
//! cargo run --release --example forest_stress
//! ```

use greedy_stm::cm::ManagerKind;
use greedy_stm::prelude::*;
use greedy_stm::structures::forest::UpdateScope;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const TREES: usize = 50;
const THREADS: usize = 6;
const KEY_RANGE: i64 = 256;
const RUN_FOR: Duration = Duration::from_millis(400);

struct Outcome {
    manager: &'static str,
    short_commits: u64,
    long_commits: u64,
    worst_long_latency: Duration,
    abort_ratio: f64,
}

fn run(kind: ManagerKind) -> Outcome {
    let stm = Arc::new(Stm::builder().manager(kind.factory()).build());
    let forest = TxRbForest::new(TREES);
    let stop = Arc::new(AtomicBool::new(false));
    let mut short_commits = 0u64;
    let mut long_commits = 0u64;
    let mut worst_long_latency = Duration::ZERO;
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let stm = Arc::clone(&stm);
            let forest = forest.clone();
            let stop = Arc::clone(&stop);
            handles.push(scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut seed = (t as u64).wrapping_mul(0x2545F4914F6CDD1D) | 1;
                let mut short = 0u64;
                let mut long = 0u64;
                let mut worst = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let key = ((seed >> 33) % KEY_RANGE as u64) as i64;
                    let insert = (seed >> 11) & 1 == 0;
                    let all_trees = (seed >> 3).is_multiple_of(10); // ~10% long transactions
                    let scope_choice = if all_trees {
                        UpdateScope::All
                    } else {
                        UpdateScope::One(((seed >> 17) % TREES as u64) as usize)
                    };
                    let started = Instant::now();
                    let ok = ctx
                        .atomically(|tx| {
                            if insert {
                                forest.insert(tx, scope_choice, key)?;
                            } else {
                                forest.remove(tx, scope_choice, key)?;
                            }
                            Ok(())
                        })
                        .is_ok();
                    if ok {
                        if all_trees {
                            long += 1;
                            worst = worst.max(started.elapsed());
                        } else {
                            short += 1;
                        }
                    }
                }
                (short, long, worst)
            }));
        }
        thread::sleep(RUN_FOR);
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            let (s, l, w) = handle.join().unwrap();
            short_commits += s;
            long_commits += l;
            worst_long_latency = worst_long_latency.max(w);
        }
    });
    Outcome {
        manager: kind.name(),
        short_commits,
        long_commits,
        worst_long_latency,
        abort_ratio: stm.stats().snapshot().abort_ratio(),
    }
}

fn main() {
    println!(
        "red-black forest: {TREES} trees, {THREADS} threads, {KEY_RANGE} keys, ~10% all-tree transactions, {RUN_FOR:?} per manager\n"
    );
    println!(
        "{:>14} {:>14} {:>12} {:>18} {:>12}",
        "manager", "short-commits", "long-commits", "worst-long-latency", "abort-ratio"
    );
    for kind in [
        ManagerKind::Greedy,
        ManagerKind::GreedyTimeout,
        ManagerKind::Karma,
        ManagerKind::Polka,
        ManagerKind::Eruption,
        ManagerKind::Backoff,
        ManagerKind::Aggressive,
        ManagerKind::Timestamp,
    ] {
        let o = run(kind);
        println!(
            "{:>14} {:>14} {:>12} {:>18.1?} {:>11.1}%",
            o.manager,
            o.short_commits,
            o.long_commits,
            o.worst_long_latency,
            o.abort_ratio * 100.0
        );
    }
    println!("\nA manager that starves the long all-tree transactions shows `long-commits = 0`.");
}
