//! The paper's Section 4 worst case, end to end.
//!
//! Builds the chain of `s + 1` unit-length transactions over `s` objects,
//! simulates it under several contention managers, and compares each
//! makespan against the optimal off-line list schedule and against
//! Theorem 9's `s(s+1)+2` bound. The greedy manager lands at `s + 1`
//! (exactly the paper's analysis); the optimal schedule needs only 2.
//!
//! ```sh
//! cargo run --release --example adversarial_chain
//! cargo run --release --example adversarial_chain -- 12
//! ```

use greedy_stm::cm::ManagerKind;
use greedy_stm::sched::{
    chain, optimal_list_schedule, simulate, theorem9_bound, SimConfig, TaskSystem,
};

fn main() {
    let s: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let ticks_per_unit = 10u64;
    let instance = chain(s, ticks_per_unit);
    println!(
        "adversarial chain: {} transactions over {} objects, unit length each",
        instance.transactions.len(),
        s
    );

    let tasks = TaskSystem::from_transactions(&instance.transactions);
    let optimal = optimal_list_schedule(&tasks);
    let optimal_units = optimal.makespan / ticks_per_unit as f64;
    println!(
        "optimal off-line list schedule: {:.2} time units ({}exhaustive search)",
        optimal_units,
        if optimal.exact { "" } else { "non-" }
    );
    println!("Theorem 9 bound for s = {s}: {:.0}\n", theorem9_bound(s));

    println!(
        "{:>14} {:>10} {:>8} {:>10} {:>16}",
        "manager", "makespan", "ratio", "aborts", "pending-commit"
    );
    for kind in [
        ManagerKind::Greedy,
        ManagerKind::GreedyTimeout,
        ManagerKind::Timestamp,
        ManagerKind::Karma,
        ManagerKind::Aggressive,
        ManagerKind::Polite,
    ] {
        let outcome = simulate(
            &instance.transactions,
            kind.factory(),
            SimConfig { max_ticks: 500_000 },
        );
        let makespan = outcome.makespan_units(ticks_per_unit as f64);
        let ratio = makespan / optimal_units;
        println!(
            "{:>14} {:>10.2} {:>8.2} {:>10} {:>16}",
            kind.name(),
            makespan,
            ratio,
            outcome.total_aborts(),
            outcome.pending_commit_held
        );
    }
    println!(
        "\nexpected from the paper: greedy ≈ {:.0} (s + 1), optimal = {:.0}",
        instance.expected_greedy_makespan(),
        instance.expected_optimal_makespan()
    );
}
