//! Runs the paper's benchmark workload (256-key integer set, 100% updates)
//! on one data structure and prints a throughput comparison of every
//! contention manager in the registry — a miniature, single-machine version
//! of Figures 1–4.
//!
//! ```sh
//! cargo run --release --example manager_showdown
//! cargo run --release --example manager_showdown -- skiplist 8
//! ```
//!
//! Arguments: structure (`list`, `skiplist`, `rbtree`, `forest`) and thread
//! count (default: `list 4`).

use greedy_stm::cm::ManagerKind;
use std::time::Duration;
use stm_bench::{run_workload, StructureKind, WorkloadConfig};

fn main() {
    let structure_arg = std::env::args().nth(1).unwrap_or_else(|| "list".to_string());
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let structure = match structure_arg.as_str() {
        "list" => StructureKind::List,
        "skiplist" => StructureKind::SkipList,
        "rbtree" => StructureKind::RbTree,
        "forest" | "rbforest" => StructureKind::paper_forest(),
        other => {
            eprintln!("unknown structure '{other}', using list");
            StructureKind::List
        }
    };
    let cfg = WorkloadConfig {
        threads,
        key_range: 256,
        duration: Duration::from_millis(400),
        local_work: 0,
        seed: 0x5140,
        ..WorkloadConfig::default()
    };
    println!(
        "structure = {}, threads = {}, keys = {}, duration = {:?}, 100% updates\n",
        structure.name(),
        cfg.threads,
        cfg.key_range,
        cfg.duration
    );
    println!(
        "{:>16} {:>14} {:>12} {:>12}",
        "manager", "commits/sec", "commits", "abort-ratio"
    );
    let mut results: Vec<_> = ManagerKind::ALL
        .iter()
        .map(|kind| run_workload(*kind, &structure, &cfg))
        .collect();
    results.sort_by(|a, b| b.throughput.partial_cmp(&a.throughput).unwrap());
    for r in &results {
        println!(
            "{:>16} {:>14.0} {:>12} {:>11.1}%",
            r.manager,
            r.throughput,
            r.commits,
            r.abort_ratio * 100.0
        );
    }
    println!("\nfastest manager on this workload: {}", results[0].manager);
}
