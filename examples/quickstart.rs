//! Quickstart: transactional cells, composition, and contention managers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use greedy_stm::prelude::*;
use std::sync::Arc;
use std::thread;

fn main() {
    // 1. Build an STM. Threads arbitrate conflicts with the greedy manager —
    //    the paper's provably starvation-free choice.
    let stm = Arc::new(Stm::builder().manager(GreedyManager::factory()).build());

    // 2. Shared state lives in TVars.
    let checking = TVar::new(900i64);
    let savings = TVar::new(100i64);

    // 3. A transaction is a closure over a `Txn` handle; everything inside
    //    commits atomically or not at all.
    let mut ctx = stm.thread();
    ctx.atomically(|tx| {
        let amount = 250;
        tx.modify(&checking, |b| b - amount)?;
        tx.modify(&savings, |b| b + amount)?;
        Ok(())
    })
    .expect("transfer commits");
    println!(
        "after transfer: checking = {}, savings = {}",
        stm.read_atomic(&checking),
        stm.read_atomic(&savings)
    );

    // 4. Transactions compose: the set structures run inside the caller's
    //    transaction, so a multi-structure update is still atomic.
    let tree = TxRbTree::new();
    let audit_log = TxQueue::new();
    ctx.atomically(|tx| {
        tree.insert(tx, 42)?;
        audit_log.enqueue(tx, 42)?;
        Ok(())
    })
    .unwrap();
    println!(
        "tree contains 42: {}",
        ctx.atomically(|tx| tree.contains(tx, 42)).unwrap()
    );

    // 5. Under contention the manager earns its keep: eight threads hammer
    //    one counter and nothing is lost.
    let counter = TxCounter::new();
    let threads = 8;
    let per_thread = 10_000;
    thread::scope(|scope| {
        for _ in 0..threads {
            let stm = Arc::clone(&stm);
            let counter = counter.clone();
            scope.spawn(move || {
                let mut ctx = stm.thread();
                for _ in 0..per_thread {
                    ctx.atomically(|tx| counter.increment(tx)).unwrap();
                }
            });
        }
    });
    let total = counter.load(&stm);
    assert_eq!(total, threads * per_thread);
    println!("{threads} threads x {per_thread} increments = {total} (exact)");

    let stats = stm.stats().snapshot();
    println!(
        "runtime stats: {} commits, {} aborts ({:.1}% abort ratio), {} waits",
        stats.commits,
        stats.aborts,
        stats.abort_ratio() * 100.0,
        stats.waits
    );
}
