//! A bank of accounts under concurrent transfers: the canonical "money is
//! conserved" STM demonstration, plus a whole-bank audit transaction that the
//! greedy manager guarantees will not starve (Theorem 1), even though it
//! conflicts with every transfer.
//!
//! ```sh
//! cargo run --release --example bank
//! ```

use greedy_stm::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const ACCOUNTS: usize = 64;
const INITIAL_BALANCE: i64 = 1_000;
const TRANSFER_THREADS: usize = 6;

fn main() {
    let stm = Arc::new(Stm::builder().manager(GreedyManager::factory()).build());
    let accounts: Arc<Vec<TVar<i64>>> =
        Arc::new((0..ACCOUNTS).map(|_| TVar::new(INITIAL_BALANCE)).collect());
    let expected_total = (ACCOUNTS as i64) * INITIAL_BALANCE;
    let stop = Arc::new(AtomicBool::new(false));

    let started = Instant::now();
    let mut audit_count = 0u64;
    let mut worst_audit_attempts = 0u64;
    thread::scope(|scope| {
        // Transfer threads: short two-account transactions.
        for t in 0..TRANSFER_THREADS {
            let stm = Arc::clone(&stm);
            let accounts = Arc::clone(&accounts);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut seed = (t as u64).wrapping_mul(0x9e3779b97f4a7c15) | 1;
                while !stop.load(Ordering::Relaxed) {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (seed >> 33) as usize % ACCOUNTS;
                    let to = (seed >> 13) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = ((seed >> 5) % 50) as i64 + 1;
                    ctx.atomically(|tx| {
                        let balance = tx.read(&accounts[from])?;
                        // Never overdraw: skip the transfer but still commit.
                        if balance >= amount {
                            tx.write(&accounts[from], balance - amount)?;
                            tx.modify(&accounts[to], |b| b + amount)?;
                        }
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
        // Audit thread: one long transaction reading every account.
        let audit = {
            let stm = Arc::clone(&stm);
            let accounts = Arc::clone(&accounts);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut ctx = stm.thread();
                let mut audits = 0u64;
                let mut worst_attempts = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let mut attempts = 0u64;
                    let total = ctx
                        .atomically(|tx| {
                            attempts += 1;
                            let mut sum = 0i64;
                            for account in accounts.iter() {
                                sum += tx.read(account)?;
                            }
                            Ok(sum)
                        })
                        .unwrap();
                    assert_eq!(total, (ACCOUNTS as i64) * INITIAL_BALANCE, "money vanished!");
                    audits += 1;
                    worst_attempts = worst_attempts.max(attempts);
                    thread::sleep(Duration::from_millis(1));
                }
                (audits, worst_attempts)
            })
        };
        thread::sleep(Duration::from_millis(500));
        stop.store(true, Ordering::Relaxed);
        let (audits, worst) = audit.join().unwrap();
        audit_count = audits;
        worst_audit_attempts = worst;
    });

    let final_total: i64 = accounts.iter().map(|a| stm.read_atomic(a)).sum();
    let stats = stm.stats().snapshot();
    println!("ran for {:?}", started.elapsed());
    println!(
        "final total = {final_total} (expected {expected_total}) — conservation {}",
        if final_total == expected_total { "holds" } else { "VIOLATED" }
    );
    println!(
        "audits completed: {audit_count}, worst attempts for one audit: {worst_audit_attempts}"
    );
    println!(
        "transactions: {} committed, {} aborted ({:.1}% abort ratio), {} conflicts",
        stats.commits,
        stats.aborts,
        stats.abort_ratio() * 100.0,
        stats.conflicts
    );
    assert_eq!(final_total, expected_total);
}
